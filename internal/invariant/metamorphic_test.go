package invariant_test

import (
	"math/rand"
	"reflect"
	"testing"

	"precinct/internal/geo"
	"precinct/internal/metrics"
	"precinct/internal/mobility"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/sim"
	"precinct/internal/workload"
)

// permRun is everything one permuted network run produces.
type permRun struct {
	net   *node.Network
	rep   metrics.Report
	stats node.Stats
	radio radio.Stats
}

// runPermuted builds a static 16-node network where node perm[r] plays
// role r: it stands at role r's position and issues role r's requests,
// updates and faults. perm == identity gives the reference run.
//
// The setup is engineered so that outcomes depend only on geometry, never
// on node-ID tie-breaking: generic (non-grid) positions avoid equidistant
// ties, replication and caching are off so every key has exactly one
// answerer, and the channel is lossless and collision-free so no RNG is
// consumed. Under these conditions relabeling node IDs must leave every
// aggregate observable bit-identical.
func runPermuted(t *testing.T, perm []int) permRun {
	t.Helper()
	const n = 16
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(600, 600))
	posRNG := rand.New(rand.NewSource(42))
	rolePos := make([]geo.Point, n)
	for r := range rolePos {
		rolePos[r] = geo.Pt(20+560*posRNG.Float64(), 20+560*posRNG.Float64())
	}
	pos := make([]geo.Point, n)
	for r, id := range perm {
		pos[id] = rolePos[r]
	}
	mob, err := mobility.NewStatic(pos)
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	rng := sim.NewRNG(7)
	ch, err := radio.New(radio.DefaultConfig(), sched, mob, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	table, err := region.NewGrid(area, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := workload.NewCatalog(workload.CatalogConfig{Items: 60, MinSize: 1024, MaxSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cfg := node.DefaultConfig()
	cfg.CacheBytes = 0
	cfg.EnRoute = false
	cfg.Replication = false
	cfg.Warmup = 0
	coll := metrics.NewCollector()
	net, err := node.New(node.Options{
		Config: cfg, Scheduler: sched, Channel: ch,
		Regions: table, Catalog: cat, Collector: coll, RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Role-indexed workload: distinct times keep same-time tie-breaking
	// out of the picture.
	reqs := []struct {
		at   float64
		role int
		key  workload.Key
	}{
		{5.1, 0, 3}, {7.3, 4, 17}, {9.8, 9, 3}, {12.2, 2, 41},
		{15.7, 11, 8}, {18.4, 6, 55}, {21.9, 14, 17}, {25.3, 1, 29},
		{31.6, 7, 41}, {35.2, 13, 0}, {41.8, 3, 8}, {47.4, 10, 55},
	}
	for _, q := range reqs {
		id := radio.NodeID(perm[q.role])
		key := q.key
		sched.At(q.at, func() { net.RequestFrom(id, key) })
	}
	quitID := radio.NodeID(perm[5])
	crashID := radio.NodeID(perm[12])
	sched.At(28.5, func() { net.Quit(quitID) })
	sched.At(33.5, func() { net.Crash(crashID) })
	sched.At(52.5, func() { net.Revive(crashID) })

	rep := net.Run(80)
	return permRun{net: net, rep: rep, stats: net.Stats(), radio: ch.Stats()}
}

// TestInvariantMetamorphicNodeIDPermutation asserts the node-ID
// relabeling relation: permuting which node plays which role changes no
// aggregate observable, and maps per-node state through the permutation.
func TestInvariantMetamorphicNodeIDPermutation(t *testing.T) {
	const n = 16
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	base := runPermuted(t, identity)
	if base.rep.Requests == 0 || base.rep.Completed == 0 {
		t.Fatalf("reference run served nothing: %+v", base.rep)
	}
	if base.stats.Handoffs == 0 {
		t.Fatalf("reference run exercised no handoffs: %+v", base.stats)
	}

	perms := [][]int{
		{15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14},
	}
	for pi, perm := range perms {
		got := runPermuted(t, perm)
		if !reflect.DeepEqual(base.rep, got.rep) {
			t.Errorf("perm %d: Report diverged:\nbase: %+v\ngot:  %+v", pi, base.rep, got.rep)
		}
		if base.stats != got.stats {
			t.Errorf("perm %d: protocol Stats diverged:\nbase: %+v\ngot:  %+v", pi, base.stats, got.stats)
		}
		if base.radio != got.radio {
			t.Errorf("perm %d: radio Stats diverged:\nbase: %+v\ngot:  %+v", pi, base.radio, got.radio)
		}
		// Per-node state must map through the permutation: the node
		// playing role r ends up with role r's store.
		for r := 0; r < n; r++ {
			want := base.net.Peer(radio.NodeID(r)).Store().Keys()
			have := got.net.Peer(radio.NodeID(perm[r])).Store().Keys()
			if !reflect.DeepEqual(want, have) {
				t.Errorf("perm %d: role %d store diverged: want %v, have %v", pi, r, want, have)
			}
		}
	}
}
