package invariant

import (
	"fmt"
	"math"

	"precinct/internal/consistency"
	"precinct/internal/energy"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/workload"
)

// CacheChecker verifies every peer cache's structural invariants: byte
// occupancy never exceeds capacity, the occupancy accumulator matches the
// entry sizes, and the GD-LD aging floor L never decreases (paper
// Section 3: L rises to the utility of each victim).
type CacheChecker struct{}

// Name implements Checker.
func (*CacheChecker) Name() string { return "cache" }

// Sweep implements Checker.
func (*CacheChecker) Sweep(ctx *Context) []string {
	var out []string
	for i := 0; i < ctx.Net.Peers(); i++ {
		p := ctx.Net.Peer(radio.NodeID(i))
		c := p.Cache()
		if c == nil {
			continue
		}
		if err := c.CheckInvariants(); err != nil {
			out = append(out, fmt.Sprintf("peer %d: %v", i, err))
		}
	}
	return out
}

// Finalize implements Checker.
func (c *CacheChecker) Finalize(ctx *Context) []string { return c.Sweep(ctx) }

// AdmissionChecker verifies the paper's cache admission control
// (Section 3): an item served from within the requester's own region must
// never enter the requester's dynamic cache.
type AdmissionChecker struct{}

// Name implements Checker.
func (*AdmissionChecker) Name() string { return "admission" }

// Sweep implements Checker.
func (*AdmissionChecker) Sweep(*Context) []string { return nil }

// Finalize implements Checker.
func (*AdmissionChecker) Finalize(*Context) []string { return nil }

// OnCacheAdmit implements the admit observer.
func (*AdmissionChecker) OnCacheAdmit(_ *Context, id radio.NodeID, requesterRegion, serverRegion region.ID, key workload.Key) []string {
	if requesterRegion == serverRegion {
		return []string{fmt.Sprintf(
			"peer %d cached key %d served from its own region %d",
			int(id), uint32(key), int(requesterRegion))}
	}
	return nil
}

// CustodyChecker verifies key ownership (Section 2): at any instant a key
// has at most one live custodian per replica rank — one primary (rank 0)
// and one per replica region (copies can be zero while in flight or
// after losses) — every stored rank stays within the configured replica
// count, and a re-homing pass leaves a peer holding only copies that
// either belong to its current region or have no eligible custodian
// anywhere.
type CustodyChecker struct{}

// Name implements Checker.
func (*CustodyChecker) Name() string { return "custody" }

// Sweep implements Checker.
func (*CustodyChecker) Sweep(ctx *Context) []string {
	var out []string
	maxRank := ctx.Net.Replicas()
	seen := make(map[workload.Key][]int)
	for i := 0; i < ctx.Net.Peers(); i++ {
		p := ctx.Net.Peer(radio.NodeID(i))
		if !p.Alive() {
			continue
		}
		st := p.Store()
		for _, k := range st.Keys() {
			it, _ := st.Get(k)
			if it.ReplicaRank < 0 || it.ReplicaRank > maxRank {
				out = append(out, fmt.Sprintf(
					"peer %d stores key %d at replica rank %d outside [0, %d]",
					i, uint32(k), it.ReplicaRank, maxRank))
				continue
			}
			h := seen[k]
			if len(h) <= it.ReplicaRank {
				h = append(h, make([]int, it.ReplicaRank+1-len(h))...)
			}
			h[it.ReplicaRank]++
			seen[k] = h
		}
	}
	for k, h := range seen {
		for rank, count := range h {
			if count <= 1 {
				continue
			}
			if rank == 0 {
				out = append(out, fmt.Sprintf("key %d has %d live primary custodians", uint32(k), count))
			} else {
				out = append(out, fmt.Sprintf(
					"key %d has %d live rank-%d replica custodians", uint32(k), count, rank))
			}
		}
	}
	return out
}

// Finalize implements Checker.
func (c *CustodyChecker) Finalize(ctx *Context) []string { return c.Sweep(ctx) }

// AfterRehome implements the rehome observer.
func (*CustodyChecker) AfterRehome(ctx *Context, p *node.Peer, evacuate bool) []string {
	var out []string
	st := p.Store()
	t := p.Table()
	for _, k := range st.Keys() {
		it, _ := st.Get(k)
		var proper region.Region
		var ok bool
		switch {
		case it.ReplicaRank == 0:
			proper, ok = t.HomeRegion(k)
		case it.ReplicaRank == 1:
			proper, ok = t.ReplicaRegion(k)
		default:
			proper, ok = t.ReplicaRegionAt(k, it.ReplicaRank)
		}
		if !ok {
			// No proper region exists (e.g. a replica copy on a
			// single-region table); the copy legitimately stays.
			continue
		}
		if evacuate {
			out = append(out, fmt.Sprintf(
				"peer %d still holds key %d (region %d) after evacuating",
				int(p.ID()), uint32(k), int(proper.ID)))
			continue
		}
		if proper.ID == p.RegionID() {
			continue // the copy is where it belongs
		}
		if ctx.Net.HasCustodian(t, proper.ID, p) {
			out = append(out, fmt.Sprintf(
				"peer %d (region %d) kept key %d although region %d has an eligible custodian",
				int(p.ID()), int(p.RegionID()), uint32(k), int(proper.ID)))
		}
	}
	return out
}

// TTRChecker verifies the Time-to-Refresh bookkeeping of Push with
// Adaptive Pull (Section 4, Equation 2): stored TTRs stay finite and
// non-negative, and every smoothing step lands inside the convex hull of
// its inputs.
type TTRChecker struct{}

// Name implements Checker.
func (*TTRChecker) Name() string { return "ttr" }

// Sweep implements Checker.
func (*TTRChecker) Sweep(ctx *Context) []string {
	var out []string
	for i := 0; i < ctx.Net.Peers(); i++ {
		p := ctx.Net.Peer(radio.NodeID(i))
		st := p.Store()
		for _, k := range st.Keys() {
			it, _ := st.Get(k)
			if math.IsNaN(it.TTR) || math.IsInf(it.TTR, 0) || it.TTR < 0 {
				out = append(out, fmt.Sprintf(
					"peer %d stores key %d with invalid TTR %v", i, uint32(k), it.TTR))
			}
		}
	}
	return out
}

// Finalize implements Checker.
func (c *TTRChecker) Finalize(ctx *Context) []string { return c.Sweep(ctx) }

// OnTTRSmoothed implements the TTR observer.
func (*TTRChecker) OnTTRSmoothed(_ *Context, id radio.NodeID, key workload.Key, alpha, prev, interval, next float64) []string {
	if err := consistency.CheckSmoothingBound(alpha, prev, interval, next); err != nil {
		return []string{fmt.Sprintf("peer %d key %d: %v", int(id), uint32(key), err)}
	}
	return nil
}

// ConservationChecker verifies the channel and energy conservation laws:
// every scheduled reception resolves as exactly one of handled, collided
// or receiver-dead (so Deliveries == Handled + Collisions + DeadDrops +
// InFlight at all times), and the energy meter's total matches both its
// per-node and its per-class decompositions.
type ConservationChecker struct{}

// Name implements Checker.
func (*ConservationChecker) Name() string { return "conservation" }

// Sweep implements Checker.
func (*ConservationChecker) Sweep(ctx *Context) []string {
	st := ctx.Ch.Stats()
	resolved := st.Handled + st.Collisions + st.DeadDrops
	if st.Deliveries != resolved+ctx.Ch.InFlight() {
		return []string{fmt.Sprintf(
			"radio: deliveries %d != handled %d + collisions %d + dead %d + in-flight %d",
			st.Deliveries, st.Handled, st.Collisions, st.DeadDrops, ctx.Ch.InFlight())}
	}
	return nil
}

// Finalize implements Checker.
func (c *ConservationChecker) Finalize(ctx *Context) []string {
	out := c.Sweep(ctx)
	if ctx.Meter == nil {
		return out
	}
	total := ctx.Meter.Total()
	var byNode float64
	for i := 0; i < ctx.Ch.N(); i++ {
		byNode += ctx.Meter.Node(i)
	}
	var byClass float64
	for _, cl := range []energy.Class{
		energy.BroadcastSend, energy.BroadcastRecv,
		energy.P2PSend, energy.P2PRecv, energy.Discard,
	} {
		byClass += ctx.Meter.ByClass(cl)
	}
	tol := 1e-6 * math.Max(1, math.Abs(total))
	if math.Abs(total-byNode) > tol {
		out = append(out, fmt.Sprintf("energy: total %v != per-node sum %v", total, byNode))
	}
	if math.Abs(total-byClass) > tol {
		out = append(out, fmt.Sprintf("energy: total %v != per-class sum %v", total, byClass))
	}
	return out
}

// SchedulerChecker verifies the event-queue bookkeeping every sweep and,
// once the run ends, that no request leaks: with a drained event queue
// every issued request must have completed or timed out.
type SchedulerChecker struct{}

// Name implements Checker.
func (*SchedulerChecker) Name() string { return "scheduler" }

// Sweep implements Checker.
func (*SchedulerChecker) Sweep(ctx *Context) []string {
	if err := ctx.Sched.CheckConsistency(); err != nil {
		return []string{err.Error()}
	}
	return nil
}

// Finalize implements Checker.
func (c *SchedulerChecker) Finalize(ctx *Context) []string {
	out := c.Sweep(ctx)
	if ctx.Sched.Len() == 0 && ctx.Net.PendingRequests() != 0 {
		out = append(out, fmt.Sprintf(
			"%d requests pending with an empty event queue", ctx.Net.PendingRequests()))
	}
	return out
}

// RegionChecker verifies the geographic hash layer (Section 2): the
// region table is structurally sound on every version peers still hold,
// and every catalog key maps to a home region and — whenever at least two
// regions exist — a distinct replica region. With k > 1 replica regions
// configured, the k replica ranks the table can satisfy must be pairwise
// distinct and distinct from the home region.
type RegionChecker struct{}

// Name implements Checker.
func (*RegionChecker) Name() string { return "region" }

// Sweep implements Checker.
func (*RegionChecker) Sweep(ctx *Context) []string {
	var out []string
	tables := map[*region.Table]bool{ctx.Net.Table(): true}
	for i := 0; i < ctx.Net.Peers(); i++ {
		tables[ctx.Net.Peer(radio.NodeID(i)).Table()] = true
	}
	for t := range tables {
		if err := t.CheckInvariants(); err != nil {
			out = append(out, err.Error())
		}
	}
	t := ctx.Net.Table()
	for k := 0; k < ctx.Catalog.Len(); k++ {
		key := workload.Key(k)
		home, ok := t.HomeRegion(key)
		if !ok {
			out = append(out, fmt.Sprintf("key %d has no home region", k))
			continue
		}
		if t.Len() < 2 {
			continue
		}
		rep, ok := t.ReplicaRegion(key)
		if !ok {
			out = append(out, fmt.Sprintf("key %d has no replica region on a %d-region table", k, t.Len()))
			continue
		}
		if rep.ID == home.ID {
			out = append(out, fmt.Sprintf("key %d: replica region %d equals home region", k, int(home.ID)))
		}
		if reps := ctx.Net.Replicas(); reps > 1 {
			// Rank 1 must agree with the single-replica lookup, and the
			// ranks the table can satisfy must be pairwise distinct.
			used := map[region.ID]int{home.ID: 0}
			for r := 1; r <= reps && r < t.Len(); r++ {
				rr, ok := t.ReplicaRegionAt(key, r)
				if !ok {
					out = append(out, fmt.Sprintf(
						"key %d has no rank-%d replica region on a %d-region table", k, r, t.Len()))
					break
				}
				if r == 1 && rr.ID != rep.ID {
					out = append(out, fmt.Sprintf(
						"key %d: rank-1 replica region %d disagrees with the single-replica lookup %d",
						k, int(rr.ID), int(rep.ID)))
				}
				if prev, dup := used[rr.ID]; dup {
					out = append(out, fmt.Sprintf(
						"key %d: rank-%d replica region %d collides with rank %d",
						k, r, int(rr.ID), prev))
				}
				used[rr.ID] = r
			}
		}
	}
	return out
}

// Finalize implements Checker.
func (c *RegionChecker) Finalize(ctx *Context) []string { return c.Sweep(ctx) }
