// Package fuzzgen deterministically expands integer seeds into randomized
// but valid simulation scenarios for the invariant test suite: varied
// node counts, mobility models, region partitions, radio impairments,
// workloads, consistency schemes and failure/churn schedules. The same
// seed always yields the same scenario, so a failing seed is a complete,
// reproducible bug report.
//
// The package also provides the metamorphic transformations the suite
// uses: relabeling, radio-backend toggling and fault-order shuffling all
// must leave a run's Report bit-identical.
package fuzzgen

import (
	"fmt"
	"math"
	"math/rand"

	"precinct"
)

// Expand grows a seed into a scenario. The generated scenario always
// validates and runs in well under a second at test scale.
func Expand(seed int64) precinct.Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	s := precinct.DefaultScenario()
	s.Name = fmt.Sprintf("fuzz-%d", seed)
	s.Seed = seed

	s.Nodes = 16 + rng.Intn(25) // 16..40
	s.AreaSide = 600 + 150*float64(rng.Intn(5))
	s.Regions = []int{4, 9, 16}[rng.Intn(3)]
	s.VoronoiRegions = rng.Float64() < 0.2

	s.MobilityModel = []string{"waypoint", "static", "random-walk", "gauss-markov"}[rng.Intn(4)]
	s.MaxSpeed = 1 + 9*rng.Float64()
	s.Pause = 10 * rng.Float64()

	s.Range = 200 + 100*rng.Float64()
	if rng.Float64() < 0.3 {
		s.LossRate = 0.1 * rng.Float64()
	}
	s.Collisions = rng.Float64() < 0.3
	if rng.Float64() < 0.3 {
		s.BeaconInterval = 1 + 2*rng.Float64()
	}

	s.Items = 100 + rng.Intn(201)
	s.ZipfTheta = rng.Float64()
	s.RequestInterval = 10 + 20*rng.Float64()

	s.Retrieval = []string{"precinct", "precinct", "flooding", "expanding-ring"}[rng.Intn(4)]
	s.Policy = []string{"gd-ld", "gd-ld", "gd-size", "lru", "lfu"}[rng.Intn(5)]
	s.CacheFraction = 0.005 + 0.02*rng.Float64()
	s.EnRoute = rng.Float64() < 0.7
	s.Replication = rng.Float64() < 0.7

	// Half the scenarios run a write workload so the consistency and TTR
	// invariants get exercised; weight toward the paper's hybrid scheme.
	if rng.Float64() < 0.5 {
		s.UpdateInterval = 20 + 60*rng.Float64()
		s.UpdateZipfTheta = 0.8 * rng.Float64()
		s.Consistency = []string{
			"push-adaptive-pull", "push-adaptive-pull", "plain-push", "pull-every-time",
		}[rng.Intn(4)]
		s.TTRAlpha = 0.1 + 0.8*rng.Float64()
	} else {
		s.Consistency = "none"
	}

	s.Warmup = 30
	s.Duration = 120 + float64(rng.Intn(121))

	// Failure schedule: strictly increasing, pairwise distinct fault
	// times on distinct nodes, so the schedule's execution order is fully
	// determined by content and a shuffled Faults slice is a valid
	// metamorphic transformation.
	if n := rng.Intn(4); n > 0 {
		perm := rng.Perm(s.Nodes)
		t := s.Warmup + 10
		var revive []precinct.Fault
		for i := 0; i < n; i++ {
			t += 7 + 25*rng.Float64()
			kind := "crash"
			if rng.Float64() < 0.5 {
				kind = "quit"
			}
			s.Faults = append(s.Faults, precinct.Fault{At: t, Node: perm[i], Kind: kind})
			if rng.Float64() < 0.5 {
				revive = append(revive, precinct.Fault{Node: perm[i], Kind: "revive"})
			}
		}
		for _, f := range revive {
			t += 7 + 25*rng.Float64()
			f.At = t
			s.Faults = append(s.Faults, f)
		}
		if t >= s.Duration-5 {
			s.Duration = t + 30
		}
	}

	if rng.Float64() < 0.25 {
		s.ChurnInterval = 40 + 40*rng.Float64()
		s.ChurnDowntime = 20 + 20*rng.Float64()
		s.ChurnGraceful = rng.Float64()
	}
	if !s.VoronoiRegions && rng.Float64() < 0.15 {
		s.AdaptiveRegions = true
	}
	return s
}

// ExpandScale grows a seed into a large-N, lossy scenario for the scale
// tier: 250–100000 peers at the paper's node density (the area grows
// with sqrt(N) and the grid keeps ~400 m regions), always with a
// nonzero LossRate. maxNodes caps the node count so tests can stay
// tractable under -short (the invariant suite passes 500 there, 2000
// otherwise; only the soak/acceptance runs lift the cap into the
// 10k–100k tier). Durations are short — event volume already scales
// with N — except at 10k+ nodes, where the duration is pinned to the
// acceptance shape (300 s, 60 s warmup) regardless of seed.
func ExpandScale(seed int64, maxNodes int) precinct.Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1e5ca1e))
	s := precinct.DefaultScenario()
	s.Name = fmt.Sprintf("scale-%d", seed)
	s.Seed = seed

	tiers := []int{250, 500, 1000, 2000, 10000, 50000, 100000}
	nodes := tiers[rng.Intn(len(tiers))]
	if maxNodes > 0 && nodes > maxNodes {
		nodes = maxNodes
	}
	s.Nodes = nodes
	// Constant density: the paper's 80 nodes / (1200 m)² square.
	s.AreaSide = 1200 * math.Sqrt(float64(nodes)/80)
	rows := int(math.Round(s.AreaSide / 400))
	if rows < 3 {
		rows = 3
	}
	s.Regions = rows * rows

	s.MobilityModel = []string{"waypoint", "static", "random-walk"}[rng.Intn(3)]
	s.MaxSpeed = 2 + 8*rng.Float64()
	s.Pause = 5

	s.LossRate = []float64{0.05, 0.1, 0.3}[rng.Intn(3)] // always lossy
	s.Collisions = rng.Float64() < 0.3

	s.Items = 500 + rng.Intn(501)
	s.ZipfTheta = 0.8
	s.RequestInterval = 20 + 20*rng.Float64()

	s.Policy = []string{"gd-ld", "gd-ld", "gd-size"}[rng.Intn(3)]
	s.CacheFraction = 0.005 + 0.02*rng.Float64()

	if rng.Float64() < 0.5 {
		s.UpdateInterval = 40 + 40*rng.Float64()
		s.Consistency = []string{
			"push-adaptive-pull", "plain-push", "pull-every-time",
		}[rng.Intn(3)]
		s.TTRAlpha = 0.5
	}

	s.Warmup = 20
	s.Duration = 60 + float64(rng.Intn(61))
	if s.Nodes >= 10000 {
		// The big tier always runs the acceptance shape: a full 300 s
		// scenario with a 60 s cache-fill warmup.
		s.Warmup = 60
		s.Duration = 300
	}
	return s
}

// Relabel returns the scenario with a different Name. Renaming must not
// affect the run at all.
func Relabel(s precinct.Scenario, name string) precinct.Scenario {
	s.Name = name
	return s
}

// ToggleLinearRadio flips the neighbor-query backend between the spatial
// grid index and the reference linear scan; the two are bit-identical by
// contract.
func ToggleLinearRadio(s precinct.Scenario) precinct.Scenario {
	s.LinearRadio = !s.LinearRadio
	return s
}

// ToggleLinearCache flips cache victim selection between the heap index
// and the reference linear scan; like ToggleLinearRadio, the two are
// bit-identical by contract (DESIGN.md section 11).
func ToggleLinearCache(s precinct.Scenario) precinct.Scenario {
	s.LinearCache = !s.LinearCache
	return s
}

// ShuffleFaults deterministically permutes the order of the Faults slice
// without touching its contents. Because Expand emits pairwise-distinct
// fault times, scheduling order is content-determined and the permuted
// scenario must produce an identical Report.
func ShuffleFaults(s precinct.Scenario, seed int64) precinct.Scenario {
	if len(s.Faults) < 2 {
		return s
	}
	faults := make([]precinct.Fault, len(s.Faults))
	copy(faults, s.Faults)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(faults), func(i, j int) { faults[i], faults[j] = faults[j], faults[i] })
	s.Faults = faults
	return s
}

// NonDefaultWorkloads lists the generated non-stationary workload kinds
// WithWorkload cycles through (the trace workload needs a trace file,
// so suites wire it separately).
var NonDefaultWorkloads = []string{"flash-crowd", "diurnal", "hotspot", "rank-churn"}

// WithReplicas derives a k-replica variant of a scenario: replication
// forced on with k replica regions per key (DESIGN.md section 16). The
// Name gains a "/rep<k>" tag so failures name the replica layer. Expand's
// own RNG draw sequence is untouched — the transform layers the new axis
// on top, so every existing golden trace stays valid.
func WithReplicas(s precinct.Scenario, k int) precinct.Scenario {
	s.Replication = true
	s.Replicas = k
	s.Name = fmt.Sprintf("%s/rep%d", s.Name, k)
	return s
}

// WithPolicy derives a policy-lab variant of a scenario running the
// named replacement policy. Like WithReplicas it never touches Expand's
// draw sequence, so the policy axis composes with every seed.
func WithPolicy(s precinct.Scenario, policy string) precinct.Scenario {
	s.Policy = policy
	s.Name = s.Name + "/" + policy
	return s
}

// ShardCounts is the shard-count axis the parallel equivalence suite
// sweeps: the even counts the suite always covered plus odd and
// non-divisor counts, so node populations that do not split evenly
// (Expand draws 16–40 nodes — most are not divisible by 3, 5 or 8)
// exercise the uneven strip cuts and the one-node-minimum guarantee.
var ShardCounts = []int{2, 3, 4, 5, 8}

// WithShards derives a sharded-execution variant of a scenario: the
// shard count is forced, and the knobs the sharded envelope forbids
// (beaconing, adaptive regions) are cleared. Like the other transforms
// it never touches Expand's draw sequence. The seed additionally picks
// the shard-balance mode, so both the load-probe split and the legacy
// equal-count split stay covered.
func WithShards(s precinct.Scenario, shards int, seed int64) precinct.Scenario {
	s.BeaconInterval = 0
	s.AdaptiveRegions = false
	s.Shards = shards
	if seed%2 == 1 {
		s.ShardBalance = precinct.ShardBalanceCount
		s.Name = fmt.Sprintf("%s/shards%d-count", s.Name, shards)
	} else {
		s.ShardBalance = precinct.ShardBalanceLoad
		s.Name = fmt.Sprintf("%s/shards%d-load", s.Name, shards)
	}
	return s
}

// WithWorkload derives a workload-lab variant of a scenario: the seed
// picks one of the non-stationary sources and perturbs its parameters
// deterministically. Shards is cleared (non-default workloads are
// sequential-only) and the Name gains the workload tag so failures name
// the source that produced them.
func WithWorkload(s precinct.Scenario, seed int64) precinct.Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x10ad1ab5))
	kind := NonDefaultWorkloads[rng.Intn(len(NonDefaultWorkloads))]
	s.Workload = kind
	s.Shards = 0
	s.Name = s.Name + "/" + kind
	measured := s.Duration - s.Warmup
	switch kind {
	case "flash-crowd":
		s.WorkloadCfg.FlashAt = s.Warmup + measured*(0.2+0.4*rng.Float64())
		s.WorkloadCfg.FlashDuration = measured * (0.1 + 0.3*rng.Float64())
		s.WorkloadCfg.FlashHotset = 1 + rng.Intn(1+s.Items/20)
		s.WorkloadCfg.FlashBoost = 0.3 + 0.6*rng.Float64()
	case "diurnal":
		s.WorkloadCfg.DriftPeriod = measured * (0.3 + 0.9*rng.Float64())
	case "hotspot":
		s.WorkloadCfg.HotspotGrid = 2 + rng.Intn(3)
		s.WorkloadCfg.HotspotHotset = 1 + rng.Intn(1+s.Items/10)
		s.WorkloadCfg.HotspotBoost = 0.3 + 0.6*rng.Float64()
	case "rank-churn":
		s.WorkloadCfg.ChurnEvery = 10 + 40*rng.Float64()
		s.WorkloadCfg.ChurnSwaps = 1 + rng.Intn(1+s.Items/5)
	}
	return s
}
