// Package invariant enforces PReCinCt's paper-derived protocol invariants
// at runtime. A Runner attaches to an assembled simulation as a pure
// observer: it implements the node.Probe hooks for event-driven checks
// (cache admission control, Equation 2 TTR smoothing, key re-homing),
// sweeps global state periodically on the simulation clock (cache bounds,
// key custody multiplicity, region-table sanity, scheduler bookkeeping,
// message conservation), and finalizes conservation laws once the run
// completes. The checkers never mutate protocol state, schedule protocol
// events or consume randomness, so a checked run produces bit-identical
// results to an unchecked one — a property the test suite asserts.
//
// The catalog of invariants, with paper citations and hook locations,
// lives in DESIGN.md section 9.
package invariant

import (
	"fmt"
	"strings"

	"precinct/internal/energy"
	"precinct/internal/node"
	"precinct/internal/radio"
	"precinct/internal/region"
	"precinct/internal/sim"
	"precinct/internal/workload"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Checker names the invariant that fired.
	Checker string
	// Time is the simulation time of detection in seconds.
	Time float64
	// Detail describes the breach.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%.3f: %s", v.Checker, v.Time, v.Detail)
}

// Context gives checkers read access to the assembled simulation.
type Context struct {
	Net     *node.Network
	Ch      *radio.Channel
	Meter   *energy.Meter // may be nil
	Sched   *sim.Scheduler
	Catalog *workload.Catalog
}

// Checker is one invariant (or a family of related invariants). Sweep
// runs on the periodic check tick; Finalize once after the run. Both
// return human-readable violation descriptions, empty when clean.
// Checkers may additionally implement the event-observer interfaces
// below to validate individual protocol transitions.
type Checker interface {
	Name() string
	Sweep(ctx *Context) []string
	Finalize(ctx *Context) []string
}

// Event-observer interfaces a Checker may implement; the Runner
// dispatches the corresponding node.Probe callbacks to them.
type (
	admitObserver interface {
		OnCacheAdmit(ctx *Context, id radio.NodeID, requesterRegion, serverRegion region.ID, key workload.Key) []string
	}
	ttrObserver interface {
		OnTTRSmoothed(ctx *Context, id radio.NodeID, key workload.Key, alpha, prev, interval, next float64) []string
	}
	rehomeObserver interface {
		AfterRehome(ctx *Context, p *node.Peer, evacuate bool) []string
	}
	evictObserver interface {
		OnCacheEvict(ctx *Context, id radio.NodeID, key workload.Key) []string
	}
)

// Config parameterizes a Runner.
type Config struct {
	// SweepInterval is the period of the global checks in simulated
	// seconds; 0 selects 5 s.
	SweepInterval float64
	// MaxViolations caps the violations kept in memory (the total count
	// keeps running past it); 0 selects 64.
	MaxViolations int
}

// Runner drives a set of checkers against one simulation run. It
// implements node.Probe.
type Runner struct {
	cfg      Config
	checkers []Checker
	ctx      *Context

	violations []Violation
	total      uint64
	sweeps     uint64
	events     uint64
	lastEvent  float64
}

// New builds a Runner. With no checkers given, the full default set is
// used.
func New(cfg Config, checkers ...Checker) *Runner {
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = 5
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	if len(checkers) == 0 {
		checkers = DefaultCheckers()
	}
	return &Runner{cfg: cfg, checkers: checkers}
}

// DefaultCheckers returns the full invariant catalog.
func DefaultCheckers() []Checker {
	return []Checker{
		&CacheChecker{},
		&AdmissionChecker{},
		&CustodyChecker{},
		&TTRChecker{},
		&ConservationChecker{},
		&SchedulerChecker{},
		&RegionChecker{},
	}
}

// ProcSweep is the scheduler Proc kind of the runner's recurring sweep
// tick. Checked runs remain checkpointable: a restore re-arms the sweep
// through ArmSweepAt when the snapshot carries this kind.
const ProcSweep = "invariant-sweep"

// Attach wires the runner into an assembled simulation: it installs
// itself as the network's probe and the scheduler's after-event observer,
// and schedules the recurring sweep. Call before the first Run.
func (r *Runner) Attach(ctx Context) {
	r.AttachObservers(ctx)
	r.ArmSweepAt(ctx.Sched.Now() + r.cfg.SweepInterval)
}

// AttachObservers installs the probe and after-event hooks without
// arming the sweep tick — the checkpoint restore path re-arms the tick
// at the snapshot's recorded time via ArmSweepAt instead.
func (r *Runner) AttachObservers(ctx Context) {
	c := ctx
	r.ctx = &c
	r.lastEvent = c.Sched.Now()
	c.Net.SetProbe(r)
	c.Sched.SetAfterEvent(r.afterEvent)
}

// SweepInterval returns the configured sweep period in simulated seconds.
func (r *Runner) SweepInterval() float64 { return r.cfg.SweepInterval }

// ArmSweepAt schedules the next recurring sweep at an absolute time.
func (r *Runner) ArmSweepAt(at float64) {
	r.ctx.Sched.AtProc(sim.Proc{Kind: ProcSweep, Owner: -1}, at, func() {
		r.Sweep()
		r.ArmSweepAt(r.ctx.Sched.Now() + r.cfg.SweepInterval)
	})
}

// record stamps and stores violation details from one checker.
func (r *Runner) record(checker string, details []string) {
	for _, d := range details {
		r.total++
		if len(r.violations) < r.cfg.MaxViolations {
			r.violations = append(r.violations, Violation{
				Checker: checker,
				Time:    r.ctx.Sched.Now(),
				Detail:  d,
			})
		}
	}
}

// Sweep runs every checker's periodic pass immediately.
func (r *Runner) Sweep() {
	r.sweeps++
	for _, c := range r.checkers {
		r.record(c.Name(), c.Sweep(r.ctx))
	}
}

// Finalize runs the end-of-run checks (conservation laws, drained
// queues). Call once after the simulation horizon is reached.
func (r *Runner) Finalize() {
	for _, c := range r.checkers {
		r.record(c.Name(), c.Finalize(r.ctx))
	}
}

// afterEvent observes every executed event: the clock must never move
// backwards.
func (r *Runner) afterEvent(now float64) {
	r.events++
	if now < r.lastEvent {
		r.total++
		if len(r.violations) < r.cfg.MaxViolations {
			r.violations = append(r.violations, Violation{
				Checker: "scheduler",
				Time:    now,
				Detail:  fmt.Sprintf("clock moved backwards: %v after %v", now, r.lastEvent),
			})
		}
	}
	r.lastEvent = now
}

// OnCacheAdmit implements node.Probe.
func (r *Runner) OnCacheAdmit(id radio.NodeID, requesterRegion, serverRegion region.ID, key workload.Key) {
	for _, c := range r.checkers {
		if o, ok := c.(admitObserver); ok {
			r.record(c.Name(), o.OnCacheAdmit(r.ctx, id, requesterRegion, serverRegion, key))
		}
	}
}

// OnTTRSmoothed implements node.Probe.
func (r *Runner) OnTTRSmoothed(id radio.NodeID, key workload.Key, alpha, prev, interval, next float64) {
	for _, c := range r.checkers {
		if o, ok := c.(ttrObserver); ok {
			r.record(c.Name(), o.OnTTRSmoothed(r.ctx, id, key, alpha, prev, interval, next))
		}
	}
}

// OnCacheEvict implements node.Probe.
func (r *Runner) OnCacheEvict(id radio.NodeID, key workload.Key) {
	for _, c := range r.checkers {
		if o, ok := c.(evictObserver); ok {
			r.record(c.Name(), o.OnCacheEvict(r.ctx, id, key))
		}
	}
}

// AfterRehome implements node.Probe.
func (r *Runner) AfterRehome(p *node.Peer, evacuate bool) {
	for _, c := range r.checkers {
		if o, ok := c.(rehomeObserver); ok {
			r.record(c.Name(), o.AfterRehome(r.ctx, p, evacuate))
		}
	}
}

// Violations returns the recorded violations (capped at MaxViolations).
func (r *Runner) Violations() []Violation { return r.violations }

// Total returns the number of violations detected, including any beyond
// the recording cap.
func (r *Runner) Total() uint64 { return r.total }

// Sweeps returns how many sweep passes ran.
func (r *Runner) Sweeps() uint64 { return r.sweeps }

// Events returns how many scheduler events the runner observed.
func (r *Runner) Events() uint64 { return r.events }

// Err summarizes the run: nil when no invariant fired, otherwise an
// error listing the recorded violations.
func (r *Runner) Err() error {
	if r.total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %d violation(s)", r.total)
	for _, v := range r.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if int(r.total) > len(r.violations) {
		fmt.Fprintf(&b, "\n  ... %d more", int(r.total)-len(r.violations))
	}
	return fmt.Errorf("%s", b.String())
}
