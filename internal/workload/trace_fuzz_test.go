package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace fuzzes the cachelib trace parser with arbitrary byte
// strings, seeded from valid rows and the corruption classes the unit
// tests cover (committed corpus under testdata/fuzz/FuzzParseTrace).
// The parser's contract: on any input it either returns a coherent
// Trace — op counts consistent, every replayed index inside the
// catalog, catalog sizes positive and bounded — or a descriptive error.
// Never a panic, never unbounded memory beyond the input's own size.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte("op,key,key_size,size\nGET,a,1,100\nSET,b,1,200\nDELETE,a,1,0\n"))
	f.Add([]byte("GET,a,1,100\n"))
	f.Add([]byte(""))
	f.Add([]byte("# only a comment\n\n"))
	f.Add([]byte("GET,a,1\n"))                                    // short row
	f.Add([]byte("GET,a,1,2,3\n"))                                // long row
	f.Add([]byte("FROB,a,1,100\n"))                               // unknown op
	f.Add([]byte("GET,,1,100\n"))                                 // empty key
	f.Add([]byte("GET,a,one,100\n"))                              // non-numeric
	f.Add([]byte("GET,a,1,-100\n"))                               // negative
	f.Add([]byte("GET,a,1,9999999999999999999999\n"))             // overflow
	f.Add([]byte("get,A,1,1\nGeT,A,1,1\n"))                       // case folding
	f.Add([]byte("GET," + strings.Repeat("k", 2000) + ",1,1\n"))  // huge key
	f.Add(bytes.Repeat([]byte("GET,hot,3,50\n"), 64))             // repetition
	f.Add([]byte("GET,a,1,100"))                                  // no trailing newline
	f.Add([]byte("GET,a,1,100\r\nSET,b,1,1\r\n"))                 // CRLF
	f.Add([]byte{0xff, 0xfe, 0x00, ','})                          // binary noise
	f.Add([]byte("op,key,key_size,size\nop,key,key_size,size\n")) // repeated header

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatal("ParseTrace returned partial state alongside an error")
			}
			return
		}
		if tr.Gets() < 0 || tr.Sets() < 0 || tr.Deletes() < 0 {
			t.Fatal("negative op counts")
		}
		n := tr.DistinctKeys()
		for _, idx := range tr.gets {
			if int(idx) >= n {
				t.Fatalf("GET index %d outside %d distinct keys", idx, n)
			}
		}
		for _, idx := range tr.sets {
			if int(idx) >= n {
				t.Fatalf("SET index %d outside %d distinct keys", idx, n)
			}
		}
		cat := tr.BuildCatalog()
		if cat.Len() != n {
			t.Fatalf("catalog has %d items for %d distinct keys", cat.Len(), n)
		}
		for i := 0; i < n; i++ {
			if sz := cat.Size(Key(i)); sz < 1 || sz > maxTraceItemSize {
				t.Fatalf("key %d has size %d outside [1, %d]", i, sz, maxTraceItemSize)
			}
		}
		// An accepted trace with GET rows must drive a source without
		// erroring or panicking.
		if tr.Gets() > 0 {
			if _, err := NewTraceSource(TraceSourceConfig{
				Trace: tr, Peers: 3, RequestInterval: 30,
			}); err != nil {
				t.Fatalf("parsed trace rejected by the source: %v", err)
			}
		}
	})
}
