package workload

import (
	"math/rand"
	"testing"
)

func BenchmarkZipfRank(b *testing.B) {
	z, err := NewZipf(1000, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Rank(rng)
	}
}

func BenchmarkPoissonNext(b *testing.B) {
	p, err := NewPoisson(30)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Next(rng)
	}
}

func BenchmarkCatalogBuild(b *testing.B) {
	cfg := DefaultCatalogConfig()
	for i := 0; i < b.N; i++ {
		if _, err := NewCatalog(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
