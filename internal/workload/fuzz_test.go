package workload

import (
	"math/rand"
	"testing"
)

// FuzzZipfRank checks the sampler never leaves its support, for any skew
// and support size.
func FuzzZipfRank(f *testing.F) {
	f.Add(10, 0.8, int64(1))
	f.Add(1, 0.0, int64(2))
	f.Add(1000, 3.0, int64(3))
	f.Fuzz(func(t *testing.T, n int, theta float64, seed int64) {
		if n <= 0 || n > 1<<16 || theta < 0 || theta > 8 {
			t.Skip()
		}
		z, err := NewZipf(n, theta)
		if err != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 64; i++ {
			r := z.Rank(rng)
			if r < 1 || r > n {
				t.Fatalf("rank %d outside [1, %d]", r, n)
			}
		}
		// The distribution sums to one for every parameterization.
		sum := 0.0
		for r := 1; r <= n; r++ {
			sum += z.Prob(r)
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("probability mass %v", sum)
		}
	})
}
