package workload

import (
	"math/rand"
	"testing"
)

func testGen(t *testing.T, items int, updates float64) *Generator {
	t.Helper()
	cat, err := NewCatalog(CatalogConfig{Items: items, MinSize: 100, MaxSize: 999})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(GeneratorConfig{
		Catalog: cat, ZipfTheta: 0.8, RequestInterval: 30, UpdateInterval: updates,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDefaultSourceDelegates proves the adapter draws exactly what the
// bare generator draws: identical RNG seeds through either API must
// yield identical gap and key sequences. This is the unit-level half of
// the default-path equivalence proof (the system-level half is
// TestWorkloadDefaultGolden at the repository root).
func TestDefaultSourceDelegates(t *testing.T) {
	gen := testGen(t, 200, 45)
	src := DefaultSource{Gen: gen}
	a := rand.New(rand.NewSource(9))
	b := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		c := Ctx{Peer: i % 7, Now: float64(i), RNG: b}
		if gen.NextRequestGap(a) != src.NextRequestGap(c) {
			t.Fatal("request gap diverged")
		}
		if gen.PickKey(a) != src.PickKey(c) {
			t.Fatal("request key diverged")
		}
		if gen.NextUpdateGap(a) != src.NextUpdateGap(c) {
			t.Fatal("update gap diverged")
		}
		if gen.PickUpdateKey(a) != src.PickUpdateKey(c) {
			t.Fatal("update key diverged")
		}
	}
	if !src.UpdatesEnabled() {
		t.Error("updates lost in adaptation")
	}
}

func TestFlashCrowdWindow(t *testing.T) {
	gen := testGen(t, 200, 0)
	f, err := NewFlashCrowd(FlashCrowdConfig{
		Gen: gen, At: 100, Duration: 50, Hotset: 5, Boost: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := map[Key]bool{}
	for _, k := range f.hot {
		if int(k) < 100 {
			t.Errorf("hotset key %d is in the popular half of the catalog", k)
		}
		hot[k] = true
	}
	if len(hot) != 5 {
		t.Fatalf("hotset holds %d distinct keys, want 5", len(hot))
	}
	rng := rand.New(rand.NewSource(1))
	// Boost 1: every in-window pick is a hotset key.
	for i := 0; i < 100; i++ {
		if k := f.PickKey(Ctx{Now: 120, RNG: rng}); !hot[k] {
			t.Fatalf("in-window pick %d outside the hotset", k)
		}
	}
	// Outside the window the hotset share must fall back to ~base: with
	// 5 cold keys out of 200 it cannot dominate 200 draws.
	outside := 0
	for i := 0; i < 200; i++ {
		if hot[f.PickKey(Ctx{Now: 400, RNG: rng})] {
			outside++
		}
	}
	if outside > 50 {
		t.Errorf("hotset drew %d/200 outside the window", outside)
	}
}

func TestDiurnalRotation(t *testing.T) {
	gen := testGen(t, 100, 20)
	d, err := NewDiurnal(DiurnalConfig{Gen: gen, Period: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.offset(0); got != 0 {
		t.Errorf("offset(0) = %d, want 0", got)
	}
	if got := d.offset(50); got != 50 {
		t.Errorf("offset(50) = %d, want 50", got)
	}
	if got := d.offset(150); got != 50 {
		t.Errorf("offset wraps: offset(150) = %d, want 50", got)
	}
	// At half period the most popular rank must land mid-catalog: with a
	// fresh deterministic stream, the same base draw shifts by exactly
	// the offset.
	a, b := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	base := d.PickKey(Ctx{Now: 0, RNG: a})
	shifted := d.PickKey(Ctx{Now: 50, RNG: b})
	if want := Key((int(base) + 50) % 100); shifted != want {
		t.Errorf("shifted pick = %d, want %d", shifted, want)
	}
}

func TestHotspotCells(t *testing.T) {
	gen := testGen(t, 100, 0)
	h, err := NewHotspot(HotspotConfig{
		Gen: gen, AreaSide: 900, Grid: 3, Hotset: 4, Boost: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Corner and out-of-bounds positions clamp into the grid.
	if c := h.cellOf(-10, -10); c != 0 {
		t.Errorf("negative position maps to cell %d, want 0", c)
	}
	if c := h.cellOf(1e9, 1e9); c != 8 {
		t.Errorf("far position maps to cell %d, want 8", c)
	}
	// Boost 1 with a locator: picks come from the peer's cell hotset.
	loc := fixedLocator{x: 450, y: 450} // center cell 4
	cellHot := map[Key]bool{}
	for _, k := range h.cellHot[4] {
		cellHot[k] = true
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		if k := h.PickKey(Ctx{Peer: 0, RNG: rng, Loc: loc}); !cellHot[k] {
			t.Fatalf("pick %d outside the cell hotset", k)
		}
	}
	// Without a locator the fallback hotset serves.
	if k := h.PickKey(Ctx{Peer: 0, RNG: rng}); k >= Key(gen.Catalog().Len()) {
		t.Fatalf("fallback pick %d outside the catalog", k)
	}
}

type fixedLocator struct{ x, y float64 }

func (l fixedLocator) Locate(int) (float64, float64) { return l.x, l.y }

// TestRankChurnLazyAdvance proves the permutation at a given sim time
// is independent of how often the source was consulted: a source asked
// once at t=100 must hold the same permutation as one asked every
// second on the way there, given identical dedicated streams.
func TestRankChurnLazyAdvance(t *testing.T) {
	mk := func() *RankChurn {
		gen := testGen(t, 80, 0)
		r, err := NewRankChurn(RankChurnConfig{
			Gen: gen, Every: 10, Swaps: 7, RNG: rand.New(rand.NewSource(99)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	eager, lazy := mk(), mk()
	drng := rand.New(rand.NewSource(1))
	for now := 1.0; now <= 100; now++ {
		eager.PickKey(Ctx{Now: now, RNG: drng})
	}
	lazy.advance(100)
	if eager.epoch != lazy.epoch {
		t.Fatalf("epochs diverged: %d vs %d", eager.epoch, lazy.epoch)
	}
	for i := range eager.perm {
		if eager.perm[i] != lazy.perm[i] {
			t.Fatalf("permutations diverged at %d", i)
		}
	}
	if eager.epoch != 10 {
		t.Errorf("epoch = %d after t=100 with Every=10, want 10", eager.epoch)
	}
}

func TestRankChurnSnapshotRestore(t *testing.T) {
	gen := testGen(t, 80, 0)
	mk := func() *RankChurn {
		r, err := NewRankChurn(RankChurnConfig{
			Gen: gen, Every: 10, Swaps: 7, RNG: rand.New(rand.NewSource(99)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := mk()
	a.advance(55)
	st := a.StateSnapshot()
	if st.Kind != KindRankChurn || st.Epoch != 5 || len(st.Perm) != 80 {
		t.Fatalf("snapshot = %+v", st)
	}
	b := mk()
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i := range a.perm {
		if a.perm[i] != b.perm[i] {
			t.Fatalf("restored permutation diverges at %d", i)
		}
	}
	if err := b.RestoreState(SourceState{Kind: KindRankChurn, Perm: []uint32{1}}); err == nil {
		t.Error("permutation length mismatch accepted")
	}
	if err := b.RestoreState(SourceState{Kind: KindDiurnal}); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestSourceConstructorValidation(t *testing.T) {
	gen := testGen(t, 50, 0)
	if _, err := NewFlashCrowd(FlashCrowdConfig{Gen: gen, At: 10, Duration: 0, Hotset: 1, Boost: 0.5}); err == nil {
		t.Error("zero flash duration accepted")
	}
	if _, err := NewFlashCrowd(FlashCrowdConfig{Gen: gen, At: 10, Duration: 5, Hotset: 1, Boost: 1.5}); err == nil {
		t.Error("boost > 1 accepted")
	}
	if _, err := NewDiurnal(DiurnalConfig{Gen: gen, Period: -1}); err == nil {
		t.Error("negative drift period accepted")
	}
	if _, err := NewHotspot(HotspotConfig{Gen: gen, AreaSide: 100, Grid: 0, Hotset: 1, Boost: 0.5}); err == nil {
		t.Error("zero hotspot grid accepted")
	}
	if _, err := NewRankChurn(RankChurnConfig{Gen: gen, Every: 10, Swaps: 1}); err == nil {
		t.Error("missing churn stream accepted")
	}
	if _, err := NewRankChurn(RankChurnConfig{Gen: gen, Every: 0, Swaps: 1, RNG: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("zero churn interval accepted")
	}
}
