package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfProbSumsToOneAcrossScales checks the distribution-property
// contract on pinned support sizes (quick.Check covers random ones in
// workload_test.go): probability masses over the whole support must sum
// to 1 within floating-point tolerance, for uniform, paper-range and
// heavy skews.
func TestZipfProbSumsToOneAcrossScales(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
	}{
		{1, 0}, {10, 0}, {100, 0.8}, {1000, 0.8}, {1000, 0}, {500, 2.5},
	} {
		z, err := NewZipf(tc.n, tc.theta)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for r := 1; r <= tc.n; r++ {
			p := z.Prob(r)
			if p < 0 {
				t.Fatalf("n=%d theta=%v: Prob(%d) = %v < 0", tc.n, tc.theta, r, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d theta=%v: probabilities sum to %v, want 1", tc.n, tc.theta, sum)
		}
		if z.Prob(0) != 0 || z.Prob(tc.n+1) != 0 {
			t.Errorf("n=%d theta=%v: out-of-support ranks have nonzero mass", tc.n, tc.theta)
		}
	}
}

// TestZipfRankFrequencyMonotone draws a large deterministic sample and
// checks that empirical frequency decreases (weakly, within sampling
// noise) with rank, and that every rank's frequency tracks Prob.
func TestZipfRankFrequencyMonotone(t *testing.T) {
	const n, theta, samples = 50, 0.8, 500000
	z, err := NewZipf(n, theta)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, n+1)
	for i := 0; i < samples; i++ {
		counts[z.Rank(rng)]++
	}
	for r := 1; r <= n; r++ {
		want := z.Prob(r)
		got := float64(counts[r]) / samples
		// Binomial standard deviation plus a safety factor; with 5e5
		// samples this is a tight but deterministic bound.
		tol := 5*math.Sqrt(want*(1-want)/samples) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("rank %d: empirical frequency %v, Prob %v (tol %v)", r, got, want, tol)
		}
	}
	// Strict monotonicity of the underlying masses implies the empirical
	// ordering can only invert within noise; compare against a noise
	// budget rather than demanding exact ordering.
	for r := 1; r < n; r++ {
		if float64(counts[r+1]-counts[r])/samples > 5e-3 {
			t.Errorf("rank %d drew %d, rank %d drew %d: frequency increased with rank beyond noise",
				r, counts[r], r+1, counts[r+1])
		}
	}
}

// TestPoissonMeanConvergence checks that the empirical mean of Next
// converges to the configured mean over a large deterministic sample.
func TestPoissonMeanConvergence(t *testing.T) {
	for _, mean := range []float64{0.5, 30, 1000} {
		p, err := NewPoisson(mean)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		const samples = 200000
		sum := 0.0
		for i := 0; i < samples; i++ {
			g := p.Next(rng)
			if g < 0 {
				t.Fatalf("mean %v: negative gap %v", mean, g)
			}
			sum += g
		}
		got := sum / samples
		// Exponential stddev equals the mean; 5 sigma of the sample mean.
		tol := 5 * mean / math.Sqrt(samples)
		if math.Abs(got-mean) > tol {
			t.Errorf("mean %v: empirical mean %v (tol %v)", mean, got, tol)
		}
	}
}
