// Command gentrace regenerates the committed sample trace at
// internal/workload/testdata/sample_trace.csv (run from the repository
// root). It exists so the fixture provably comes from the synthetic
// generator with pinned parameters rather than from an untracked
// one-off script.
package main

import (
	"os"

	"precinct/internal/workload"
)

func main() {
	f, err := os.Create("internal/workload/testdata/sample_trace.csv")
	if err != nil {
		panic(err)
	}
	if err := workload.WriteSyntheticTrace(f, workload.SyntheticTraceConfig{
		Ops: 400, Keys: 60, ZipfTheta: 0.8,
		SetFraction: 0.15, DeleteFraction: 0.05,
		MinSize: 1024, MaxSize: 8192, Seed: 42,
	}); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
}
