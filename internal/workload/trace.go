package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// Trace parsing for the Meta cachelib key-value trace format: CSV rows
// of `op,key,key_size,size` with op in {GET, SET, DELETE}. An optional
// header row, blank lines and `#` comments are tolerated; anything else
// malformed is an error with its line number — a trace that parses
// differently than intended would silently change every result derived
// from it.

// TraceOp enumerates the operations a trace row can carry.
type TraceOp uint8

// Trace operations.
const (
	OpGet TraceOp = iota
	OpSet
	OpDelete
)

// Parser limits. Keys beyond maxTraceKeyLen and item sizes beyond
// maxTraceItemSize are rejected rather than clamped: real cachelib
// traces hash keys to short hex strings, so an enormous field means a
// corrupt or hostile input. maxTraceLine bounds scanner memory.
const (
	maxTraceKeyLen   = 1024
	maxTraceItemSize = 1 << 30
	maxTraceLine     = 64 << 10
)

// Trace is a parsed access trace: the distinct keys in first-appearance
// order (defining the catalog: the i-th distinct key becomes Key(i))
// and the GET/SET operation sequences as catalog indices. DELETEs are
// counted but not replayed — the simulated system has no delete
// operation, and dropping them preserves the request mix the caching
// layer actually sees.
type Trace struct {
	sizes   []int    // per distinct key, first non-zero size seen (min 1)
	gets    []uint32 // catalog key index per GET, in trace order
	sets    []uint32 // catalog key index per SET, in trace order
	deletes int
}

// Gets returns the number of GET operations.
func (t *Trace) Gets() int { return len(t.gets) }

// Sets returns the number of SET operations.
func (t *Trace) Sets() int { return len(t.sets) }

// Deletes returns the number of DELETE rows (parsed but not replayed).
func (t *Trace) Deletes() int { return t.deletes }

// DistinctKeys returns the number of distinct keys across all rows.
func (t *Trace) DistinctKeys() int { return len(t.sizes) }

// BuildCatalog derives the simulation catalog from the trace: one item
// per distinct key, sized by the first non-zero size the trace reports
// for it (1 byte when the trace never gives one — zero-size items would
// break byte-weighted metrics).
func (t *Trace) BuildCatalog() *Catalog {
	c := &Catalog{items: make([]Item, len(t.sizes))}
	for i, size := range t.sizes {
		c.items[i] = Item{Key: Key(i), Size: size}
		c.totalSize += int64(size)
	}
	return c
}

// traceHeader is the canonical cachelib column header.
const traceHeader = "op,key,key_size,size"

// ParseTrace reads a cachelib-format trace. It fails on the first
// malformed row; a trace with zero GET rows is returned as-is (the
// TraceSource constructor rejects it, but parsing and inspection stay
// possible).
func ParseTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxTraceLine)
	t := &Trace{}
	keyIdx := make(map[string]uint32)
	line := 0
	for sc.Scan() {
		line++
		row := strings.TrimSpace(sc.Text())
		if row == "" || strings.HasPrefix(row, "#") {
			continue
		}
		if line == 1 && strings.EqualFold(row, traceHeader) {
			continue
		}
		fields := strings.Split(row, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("workload: trace line %d: %d fields, want 4 (%s)", line, len(fields), traceHeader)
		}
		var op TraceOp
		switch strings.ToUpper(strings.TrimSpace(fields[0])) {
		case "GET":
			op = OpGet
		case "SET":
			op = OpSet
		case "DELETE":
			op = OpDelete
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown op %q", line, fields[0])
		}
		key := strings.TrimSpace(fields[1])
		if key == "" {
			return nil, fmt.Errorf("workload: trace line %d: empty key", line)
		}
		if len(key) > maxTraceKeyLen {
			return nil, fmt.Errorf("workload: trace line %d: key is %d bytes, limit %d", line, len(key), maxTraceKeyLen)
		}
		// key_size is redundant with the key column in this format; it is
		// validated as a number and otherwise ignored, matching traces
		// whose keys were anonymized by hashing.
		if _, err := parseTraceInt(fields[2]); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: key_size: %v", line, err)
		}
		size, err := parseTraceInt(fields[3])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: size: %v", line, err)
		}
		if op == OpDelete {
			t.deletes++
			continue
		}
		idx, ok := keyIdx[key]
		if !ok {
			idx = uint32(len(t.sizes))
			keyIdx[key] = idx
			t.sizes = append(t.sizes, 1)
		}
		if size > 0 && t.sizes[idx] == 1 {
			t.sizes[idx] = size
		}
		if op == OpGet {
			t.gets = append(t.gets, idx)
		} else {
			t.sets = append(t.sets, idx)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
	}
	return t, nil
}

// parseTraceInt parses a non-negative bounded integer field.
func parseTraceInt(s string) (int, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not an integer: %q", s)
	}
	if v < 0 || v > maxTraceItemSize {
		return 0, fmt.Errorf("value %d outside [0, %d]", v, maxTraceItemSize)
	}
	return int(v), nil
}

// ReadTraceFile parses the trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	t, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// TraceSource replays a parsed trace onto the mobile requesters.
// Arrival times stay Poisson (the trace format carries no timestamps);
// the key sequence comes from the trace: peer p's k-th request takes
// the GET at global index (p + k*peers) mod Gets(), so the peers
// interleave through the trace stride-wise, every row is replayed once
// per full pass, and per-peer state is a single cursor. SETs replay the
// same way on the update process.
type TraceSource struct {
	trace   *Trace
	catalog *Catalog
	peers   int
	req     *Poisson
	upd     *Poisson // nil when updates are disabled
	reqCur  []int64
	updCur  []int64
}

// TraceSourceConfig parameterizes a TraceSource.
type TraceSourceConfig struct {
	Trace *Trace
	Peers int
	// RequestInterval is the mean seconds between requests per peer.
	RequestInterval float64
	// UpdateInterval is the mean seconds between SET replays per peer;
	// 0 disables updates (SET rows are then ignored).
	UpdateInterval float64
}

// NewTraceSource validates the configuration and builds the source.
func NewTraceSource(cfg TraceSourceConfig) (*TraceSource, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("workload: trace source requires a trace")
	}
	if cfg.Peers <= 0 {
		return nil, fmt.Errorf("workload: trace source needs at least one peer, got %d", cfg.Peers)
	}
	if cfg.Trace.Gets() == 0 {
		return nil, fmt.Errorf("workload: trace has no GET operations to replay")
	}
	req, err := NewPoisson(cfg.RequestInterval)
	if err != nil {
		return nil, fmt.Errorf("workload: request process: %w", err)
	}
	s := &TraceSource{
		trace:   cfg.Trace,
		catalog: cfg.Trace.BuildCatalog(),
		peers:   cfg.Peers,
		req:     req,
		reqCur:  make([]int64, cfg.Peers),
	}
	if cfg.UpdateInterval < 0 {
		return nil, fmt.Errorf("workload: update interval must be >= 0 (0 disables updates), got %v", cfg.UpdateInterval)
	}
	if cfg.UpdateInterval > 0 {
		if cfg.Trace.Sets() == 0 {
			return nil, fmt.Errorf("workload: update interval %v set but the trace has no SET operations", cfg.UpdateInterval)
		}
		upd, err := NewPoisson(cfg.UpdateInterval)
		if err != nil {
			return nil, fmt.Errorf("workload: update process: %w", err)
		}
		s.upd = upd
		s.updCur = make([]int64, cfg.Peers)
	}
	return s, nil
}

// Kind returns KindTrace.
func (s *TraceSource) Kind() string { return KindTrace }

// Catalog returns the catalog derived from the trace's distinct keys.
func (s *TraceSource) Catalog() *Catalog { return s.catalog }

// NextRequestGap draws from the Poisson request process.
func (s *TraceSource) NextRequestGap(c Ctx) float64 { return s.req.Next(c.RNG) }

// PickKey replays the peer's next GET row and advances its cursor.
func (s *TraceSource) PickKey(c Ctx) Key {
	k := s.trace.gets[s.pos(len(s.trace.gets), c.Peer, s.reqCur[c.Peer])]
	s.reqCur[c.Peer]++
	return Key(k)
}

// UpdatesEnabled reports whether SET replay is on.
func (s *TraceSource) UpdatesEnabled() bool { return s.upd != nil }

// NextUpdateGap draws from the Poisson update process.
func (s *TraceSource) NextUpdateGap(c Ctx) float64 {
	if s.upd == nil {
		panic("workload: updates disabled")
	}
	return s.upd.Next(c.RNG)
}

// PickUpdateKey replays the peer's next SET row.
func (s *TraceSource) PickUpdateKey(c Ctx) Key {
	k := s.trace.sets[s.pos(len(s.trace.sets), c.Peer, s.updCur[c.Peer])]
	s.updCur[c.Peer]++
	return Key(k)
}

// pos maps a peer's k-th draw to a global trace index, striding the
// peers through the sequence with wraparound.
func (s *TraceSource) pos(n int, peer int, count int64) int {
	return int((int64(peer) + count*int64(s.peers)) % int64(n))
}

// StateSnapshot captures the per-peer replay cursors.
func (s *TraceSource) StateSnapshot() SourceState {
	st := SourceState{Kind: KindTrace, Requests: append([]int64(nil), s.reqCur...)}
	if s.updCur != nil {
		st.Updates = append([]int64(nil), s.updCur...)
	}
	return st
}

// RestoreState adopts replay cursors from a snapshot of an identically
// configured source over the same trace.
func (s *TraceSource) RestoreState(st SourceState) error {
	if st.Kind != KindTrace {
		return fmt.Errorf("workload: snapshot is for source %q, this run uses %q", st.Kind, KindTrace)
	}
	if len(st.Requests) != s.peers {
		return fmt.Errorf("workload: snapshot has %d request cursors, run has %d peers", len(st.Requests), s.peers)
	}
	if got, want := len(st.Updates), len(s.updCur); got != want {
		return fmt.Errorf("workload: snapshot has %d update cursors, run expects %d", got, want)
	}
	copy(s.reqCur, st.Requests)
	copy(s.updCur, st.Updates)
	return nil
}

// SyntheticTraceConfig parameterizes WriteSyntheticTrace.
type SyntheticTraceConfig struct {
	Ops            int     // total rows to emit
	Keys           int     // distinct key population
	ZipfTheta      float64 // key popularity skew
	SetFraction    float64 // fraction of rows that are SETs
	DeleteFraction float64 // fraction of rows that are DELETEs
	MinSize        int     // bytes, inclusive
	MaxSize        int     // bytes, inclusive
	Seed           int64
}

// WriteSyntheticTrace emits a deterministic cachelib-format trace:
// Zipf-popular keys named key<idx>, sizes hashed from the key exactly
// like NewCatalog derives them. It exists so benchmarks and tests can
// exercise the trace path without committing megabytes of real trace.
func WriteSyntheticTrace(w io.Writer, cfg SyntheticTraceConfig) error {
	if cfg.Ops <= 0 || cfg.Keys <= 0 {
		return fmt.Errorf("workload: synthetic trace needs positive ops and keys, got %d/%d", cfg.Ops, cfg.Keys)
	}
	if cfg.SetFraction < 0 || cfg.DeleteFraction < 0 || cfg.SetFraction+cfg.DeleteFraction > 1 {
		return fmt.Errorf("workload: set/delete fractions %v/%v invalid", cfg.SetFraction, cfg.DeleteFraction)
	}
	if cfg.MinSize <= 0 || cfg.MaxSize < cfg.MinSize {
		return fmt.Errorf("workload: invalid size range [%d, %d]", cfg.MinSize, cfg.MaxSize)
	}
	z, err := NewZipf(cfg.Keys, cfg.ZipfTheta)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, traceHeader)
	span := cfg.MaxSize - cfg.MinSize + 1
	for i := 0; i < cfg.Ops; i++ {
		idx := z.Rank(rng) - 1
		op := "GET"
		switch u := rng.Float64(); {
		case u < cfg.SetFraction:
			op = "SET"
		case u < cfg.SetFraction+cfg.DeleteFraction:
			op = "DELETE"
		}
		key := fmt.Sprintf("key%d", idx)
		size := cfg.MinSize + int(keyHash(Key(idx))%uint64(span))
		fmt.Fprintf(bw, "%s,%s,%d,%d\n", op, key, len(key), size)
	}
	return bw.Flush()
}
