package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Non-stationary sources. Each wraps the stationary Generator for its
// arrival processes and base popularity, and perturbs the key choice in
// a way the paper's GD-LD utility and TTR consistency were never tuned
// for: a sudden flash-crowd hotset, smooth diurnal rank rotation,
// geo-correlated per-region popularity, and the popularity-rank churn
// of Wang et al. (DTN cooperative caching, PAPERS.md). All randomness
// flows through Ctx.RNG or a stream registered at build time, so every
// source replays deterministically and checkpoint-exactly.

// FlashCrowdConfig parameterizes NewFlashCrowd.
type FlashCrowdConfig struct {
	Gen *Generator
	// At and Duration bound the flash window [At, At+Duration).
	At       float64
	Duration float64
	// Hotset is how many keys catch fire; they are drawn from the cold
	// half of the catalog (clamped to it), where the paper's popularity
	// priors are most wrong.
	Hotset int
	// Boost is the probability a request inside the window targets the
	// hotset instead of the base distribution.
	Boost float64
	// Seed derives the hotset membership (no RNG stream is consumed).
	Seed int64
}

// FlashCrowd turns a deterministic hotset of previously cold keys
// suddenly popular for a bounded window, then reverts.
type FlashCrowd struct {
	gen   *Generator
	at    float64
	until float64
	boost float64
	hot   []Key
}

// NewFlashCrowd validates the configuration and builds the source.
func NewFlashCrowd(cfg FlashCrowdConfig) (*FlashCrowd, error) {
	if cfg.Gen == nil {
		return nil, fmt.Errorf("workload: flash crowd requires a generator")
	}
	if cfg.Duration <= 0 || cfg.At < 0 {
		return nil, fmt.Errorf("workload: flash window [%v, +%v) invalid", cfg.At, cfg.Duration)
	}
	if cfg.Boost < 0 || cfg.Boost > 1 {
		return nil, fmt.Errorf("workload: flash boost %v outside [0, 1]", cfg.Boost)
	}
	n := cfg.Gen.Catalog().Len()
	coldStart := n / 2
	coldSpan := n - coldStart
	hotset := cfg.Hotset
	if hotset <= 0 {
		return nil, fmt.Errorf("workload: flash hotset must be positive, got %d", hotset)
	}
	if hotset > coldSpan {
		hotset = coldSpan
	}
	f := &FlashCrowd{gen: cfg.Gen, at: cfg.At, until: cfg.At + cfg.Duration, boost: cfg.Boost}
	seen := make(map[Key]bool, hotset)
	for j := uint64(0); len(f.hot) < hotset; j++ {
		k := Key(coldStart + int(splitmix64(uint64(cfg.Seed)+j)%uint64(coldSpan)))
		if !seen[k] {
			seen[k] = true
			f.hot = append(f.hot, k)
		}
	}
	return f, nil
}

// Kind returns KindFlashCrowd.
func (f *FlashCrowd) Kind() string { return KindFlashCrowd }

// Catalog returns the base generator's catalog.
func (f *FlashCrowd) Catalog() *Catalog { return f.gen.Catalog() }

// NextRequestGap draws from the base Poisson request process.
func (f *FlashCrowd) NextRequestGap(c Ctx) float64 { return f.gen.NextRequestGap(c.RNG) }

// PickKey draws from the hotset with probability Boost inside the flash
// window, from the base distribution otherwise.
func (f *FlashCrowd) PickKey(c Ctx) Key {
	if c.Now >= f.at && c.Now < f.until && c.RNG.Float64() < f.boost {
		return f.hot[c.RNG.Intn(len(f.hot))]
	}
	return f.gen.PickKey(c.RNG)
}

// UpdatesEnabled reports whether the base generator has updates.
func (f *FlashCrowd) UpdatesEnabled() bool { return f.gen.UpdatesEnabled() }

// NextUpdateGap draws from the base update process.
func (f *FlashCrowd) NextUpdateGap(c Ctx) float64 { return f.gen.NextUpdateGap(c.RNG) }

// PickUpdateKey draws from the base update-key distribution: the flash
// is read traffic, writes keep their stationary mix.
func (f *FlashCrowd) PickUpdateKey(c Ctx) Key { return f.gen.PickUpdateKey(c.RNG) }

// StateSnapshot returns the kind tag; the window position is a pure
// function of the scheduler clock.
func (f *FlashCrowd) StateSnapshot() SourceState { return SourceState{Kind: KindFlashCrowd} }

// RestoreState validates the kind tag.
func (f *FlashCrowd) RestoreState(st SourceState) error {
	return requireKind(st, KindFlashCrowd, false)
}

// DiurnalConfig parameterizes NewDiurnal.
type DiurnalConfig struct {
	Gen *Generator
	// Period is the seconds per full rotation of the popularity ranking.
	Period float64
}

// Diurnal rotates the Zipf ranking smoothly through the catalog: the
// key at rank r now is the key at rank r+1 a fraction of a Period
// later, modeling time-of-day popularity drift. Updates rotate with
// requests, so write pressure tracks the moving hotset.
type Diurnal struct {
	gen    *Generator
	period float64
}

// NewDiurnal validates the configuration and builds the source.
func NewDiurnal(cfg DiurnalConfig) (*Diurnal, error) {
	if cfg.Gen == nil {
		return nil, fmt.Errorf("workload: diurnal drift requires a generator")
	}
	if cfg.Period <= 0 || math.IsNaN(cfg.Period) || math.IsInf(cfg.Period, 0) {
		return nil, fmt.Errorf("workload: drift period must be positive and finite, got %v", cfg.Period)
	}
	return &Diurnal{gen: cfg.Gen, period: cfg.Period}, nil
}

// offset returns the current rank rotation in catalog positions.
func (d *Diurnal) offset(now float64) int {
	n := d.gen.Catalog().Len()
	frac := math.Mod(now, d.period) / d.period
	if frac < 0 {
		frac += 1
	}
	return int(math.Floor(frac * float64(n))) % n
}

// Kind returns KindDiurnal.
func (d *Diurnal) Kind() string { return KindDiurnal }

// Catalog returns the base generator's catalog.
func (d *Diurnal) Catalog() *Catalog { return d.gen.Catalog() }

// NextRequestGap draws from the base Poisson request process.
func (d *Diurnal) NextRequestGap(c Ctx) float64 { return d.gen.NextRequestGap(c.RNG) }

// PickKey draws a base key and rotates it by the clock's offset.
func (d *Diurnal) PickKey(c Ctx) Key {
	n := d.gen.Catalog().Len()
	return Key((int(d.gen.PickKey(c.RNG)) + d.offset(c.Now)) % n)
}

// UpdatesEnabled reports whether the base generator has updates.
func (d *Diurnal) UpdatesEnabled() bool { return d.gen.UpdatesEnabled() }

// NextUpdateGap draws from the base update process.
func (d *Diurnal) NextUpdateGap(c Ctx) float64 { return d.gen.NextUpdateGap(c.RNG) }

// PickUpdateKey draws a base update key and rotates it identically.
func (d *Diurnal) PickUpdateKey(c Ctx) Key {
	n := d.gen.Catalog().Len()
	return Key((int(d.gen.PickUpdateKey(c.RNG)) + d.offset(c.Now)) % n)
}

// StateSnapshot returns the kind tag; the rotation is a pure function
// of the scheduler clock.
func (d *Diurnal) StateSnapshot() SourceState { return SourceState{Kind: KindDiurnal} }

// RestoreState validates the kind tag.
func (d *Diurnal) RestoreState(st SourceState) error {
	return requireKind(st, KindDiurnal, false)
}

// HotspotConfig parameterizes NewHotspot.
type HotspotConfig struct {
	Gen *Generator
	// AreaSide is the simulation square's side in meters, partitioned
	// into Grid x Grid popularity cells (independent of the protocol's
	// region grid, so hotspots straddle region boundaries).
	AreaSide float64
	Grid     int
	// Hotset is how many keys each cell favors.
	Hotset int
	// Boost is the probability a request targets the requester's cell
	// hotset instead of the base distribution.
	Boost float64
	// Seed derives each cell's hotset membership.
	Seed int64
}

// Hotspot gives each geographic cell its own favored hotset: a peer's
// requests skew toward keys popular where the peer currently is. This
// is the one source that consults Ctx.Loc — peers moving between cells
// drag the popularity field with them.
type Hotspot struct {
	gen      *Generator
	area     float64
	grid     int
	boost    float64
	cellHot  [][]Key // per cell (row-major), the favored keys
	fallback []Key   // used when the locator is absent
}

// NewHotspot validates the configuration and builds the source.
func NewHotspot(cfg HotspotConfig) (*Hotspot, error) {
	if cfg.Gen == nil {
		return nil, fmt.Errorf("workload: hotspot requires a generator")
	}
	if cfg.AreaSide <= 0 {
		return nil, fmt.Errorf("workload: hotspot area side must be positive, got %v", cfg.AreaSide)
	}
	if cfg.Grid <= 0 {
		return nil, fmt.Errorf("workload: hotspot grid must be positive, got %d", cfg.Grid)
	}
	if cfg.Hotset <= 0 {
		return nil, fmt.Errorf("workload: hotspot hotset must be positive, got %d", cfg.Hotset)
	}
	if cfg.Boost < 0 || cfg.Boost > 1 {
		return nil, fmt.Errorf("workload: hotspot boost %v outside [0, 1]", cfg.Boost)
	}
	n := cfg.Gen.Catalog().Len()
	hotset := cfg.Hotset
	if hotset > n {
		hotset = n
	}
	h := &Hotspot{gen: cfg.Gen, area: cfg.AreaSide, grid: cfg.Grid, boost: cfg.Boost}
	h.cellHot = make([][]Key, cfg.Grid*cfg.Grid)
	for cell := range h.cellHot {
		keys := make([]Key, 0, hotset)
		seen := make(map[Key]bool, hotset)
		for j := uint64(0); len(keys) < hotset; j++ {
			k := Key(splitmix64(uint64(cfg.Seed)^uint64(cell)<<32^j) % uint64(n))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		h.cellHot[cell] = keys
	}
	h.fallback = h.cellHot[0]
	return h, nil
}

// cellOf maps a position to its popularity cell.
func (h *Hotspot) cellOf(x, y float64) int {
	cx := int(x / h.area * float64(h.grid))
	cy := int(y / h.area * float64(h.grid))
	if cx < 0 {
		cx = 0
	} else if cx >= h.grid {
		cx = h.grid - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= h.grid {
		cy = h.grid - 1
	}
	return cy*h.grid + cx
}

// Kind returns KindHotspot.
func (h *Hotspot) Kind() string { return KindHotspot }

// Catalog returns the base generator's catalog.
func (h *Hotspot) Catalog() *Catalog { return h.gen.Catalog() }

// NextRequestGap draws from the base Poisson request process.
func (h *Hotspot) NextRequestGap(c Ctx) float64 { return h.gen.NextRequestGap(c.RNG) }

// PickKey draws from the requester's cell hotset with probability
// Boost, from the base distribution otherwise.
func (h *Hotspot) PickKey(c Ctx) Key {
	if c.RNG.Float64() < h.boost {
		hot := h.fallback
		if c.Loc != nil {
			x, y := c.Loc.Locate(c.Peer)
			hot = h.cellHot[h.cellOf(x, y)]
		}
		return hot[c.RNG.Intn(len(hot))]
	}
	return h.gen.PickKey(c.RNG)
}

// UpdatesEnabled reports whether the base generator has updates.
func (h *Hotspot) UpdatesEnabled() bool { return h.gen.UpdatesEnabled() }

// NextUpdateGap draws from the base update process.
func (h *Hotspot) NextUpdateGap(c Ctx) float64 { return h.gen.NextUpdateGap(c.RNG) }

// PickUpdateKey draws from the base update-key distribution.
func (h *Hotspot) PickUpdateKey(c Ctx) Key { return h.gen.PickUpdateKey(c.RNG) }

// StateSnapshot returns the kind tag; cell hotsets are build-time
// constants and positions live in the mobility snapshot.
func (h *Hotspot) StateSnapshot() SourceState { return SourceState{Kind: KindHotspot} }

// RestoreState validates the kind tag.
func (h *Hotspot) RestoreState(st SourceState) error {
	return requireKind(st, KindHotspot, false)
}

// RankChurnConfig parameterizes NewRankChurn.
type RankChurnConfig struct {
	Gen *Generator
	// Every is the seconds between reshuffle epochs.
	Every float64
	// Swaps is how many random rank transpositions each epoch applies.
	Swaps int
	// RNG is the dedicated stream the reshuffles draw from. It must be
	// registered in the run's sim.RNG registry at build time so its
	// state rides the checkpoint's RNG section.
	RNG *rand.Rand
}

// RankChurn perturbs the rank-to-key permutation with random
// transpositions every epoch — the popularity-ranking dynamics of
// Wang et al. Keys keep their sizes and home regions; what moves is
// which keys are popular, exactly the signal GD-LD's utility tracks.
type RankChurn struct {
	gen   *Generator
	every float64
	swaps int
	rng   *rand.Rand
	epoch int64
	perm  []uint32 // rank index (0-based) -> catalog key index
}

// NewRankChurn validates the configuration and builds the source.
func NewRankChurn(cfg RankChurnConfig) (*RankChurn, error) {
	if cfg.Gen == nil {
		return nil, fmt.Errorf("workload: rank churn requires a generator")
	}
	if cfg.Every <= 0 || math.IsNaN(cfg.Every) || math.IsInf(cfg.Every, 0) {
		return nil, fmt.Errorf("workload: churn interval must be positive and finite, got %v", cfg.Every)
	}
	if cfg.Swaps <= 0 {
		return nil, fmt.Errorf("workload: churn swaps must be positive, got %d", cfg.Swaps)
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("workload: rank churn requires a dedicated RNG stream")
	}
	n := cfg.Gen.Catalog().Len()
	r := &RankChurn{gen: cfg.Gen, every: cfg.Every, swaps: cfg.Swaps, rng: cfg.RNG, perm: make([]uint32, n)}
	for i := range r.perm {
		r.perm[i] = uint32(i)
	}
	return r, nil
}

// advance applies every reshuffle epoch the clock has crossed. Draws
// happen lazily but in epoch order, so the permutation at any sim time
// is independent of how often the source was consulted before it.
func (r *RankChurn) advance(now float64) {
	target := int64(math.Floor(now / r.every))
	for r.epoch < target {
		r.epoch++
		for i := 0; i < r.swaps; i++ {
			a := r.rng.Intn(len(r.perm))
			b := r.rng.Intn(len(r.perm))
			r.perm[a], r.perm[b] = r.perm[b], r.perm[a]
		}
	}
}

// Kind returns KindRankChurn.
func (r *RankChurn) Kind() string { return KindRankChurn }

// Catalog returns the base generator's catalog.
func (r *RankChurn) Catalog() *Catalog { return r.gen.Catalog() }

// NextRequestGap draws from the base Poisson request process.
func (r *RankChurn) NextRequestGap(c Ctx) float64 { return r.gen.NextRequestGap(c.RNG) }

// PickKey draws a Zipf rank and maps it through the churned permutation.
func (r *RankChurn) PickKey(c Ctx) Key {
	r.advance(c.Now)
	return Key(r.perm[int(r.gen.PickKey(c.RNG))])
}

// UpdatesEnabled reports whether the base generator has updates.
func (r *RankChurn) UpdatesEnabled() bool { return r.gen.UpdatesEnabled() }

// NextUpdateGap draws from the base update process.
func (r *RankChurn) NextUpdateGap(c Ctx) float64 { return r.gen.NextUpdateGap(c.RNG) }

// PickUpdateKey draws an update rank through the same permutation.
func (r *RankChurn) PickUpdateKey(c Ctx) Key {
	r.advance(c.Now)
	return Key(r.perm[int(r.gen.PickUpdateKey(c.RNG))])
}

// StateSnapshot captures the epoch counter and permutation (the stream
// state rides the checkpoint's RNG section).
func (r *RankChurn) StateSnapshot() SourceState {
	return SourceState{Kind: KindRankChurn, Epoch: r.epoch, Perm: append([]uint32(nil), r.perm...)}
}

// RestoreState adopts the epoch and permutation.
func (r *RankChurn) RestoreState(st SourceState) error {
	if st.Kind != KindRankChurn {
		return fmt.Errorf("workload: snapshot is for source %q, this run uses %q", st.Kind, KindRankChurn)
	}
	if len(st.Perm) != len(r.perm) {
		return fmt.Errorf("workload: snapshot permutation covers %d keys, catalog has %d", len(st.Perm), len(r.perm))
	}
	r.epoch = st.Epoch
	copy(r.perm, st.Perm)
	return nil
}
