package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(-5, 1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewZipf(10, -0.1); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NaN theta accepted")
	}
	z, err := NewZipf(10, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 10 || z.Theta() != 0.8 {
		t.Errorf("accessors: N=%d theta=%v", z.N(), z.Theta())
	}
}

func TestZipfRankRange(t *testing.T) {
	z, _ := NewZipf(100, 0.8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		r := z.Rank(rng)
		if r < 1 || r > 100 {
			t.Fatalf("rank %d out of [1,100]", r)
		}
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z, _ := NewZipf(10, 0)
	for r := 1; r <= 10; r++ {
		if p := z.Prob(r); math.Abs(p-0.1) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want 0.1", r, p)
		}
	}
}

func TestZipfSkewFavorsLowRanks(t *testing.T) {
	z, _ := NewZipf(1000, 0.9)
	rng := rand.New(rand.NewSource(2))
	const draws = 100000
	var top10 int
	for i := 0; i < draws; i++ {
		if z.Rank(rng) <= 10 {
			top10++
		}
	}
	frac := float64(top10) / draws
	// With theta=0.9 over 1000 items the top-10 mass is ~36%; uniform
	// would be 1%. Accept a generous band.
	if frac < 0.25 {
		t.Errorf("top-10 fraction = %v, expected skew toward low ranks", frac)
	}
}

func TestZipfEmpiricalMatchesProb(t *testing.T) {
	z, _ := NewZipf(50, 0.7)
	rng := rand.New(rand.NewSource(3))
	const draws = 200000
	counts := make([]int, 51)
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	for r := 1; r <= 50; r++ {
		got := float64(counts[r]) / draws
		want := z.Prob(r)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v vs analytic %v", r, got, want)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	f := func(nRaw uint8, thetaRaw uint8) bool {
		n := int(nRaw%200) + 1
		theta := float64(thetaRaw) / 64 // 0..~4
		z, err := NewZipf(n, theta)
		if err != nil {
			return false
		}
		sum := 0.0
		for r := 1; r <= n; r++ {
			sum += z.Prob(r)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZipfProbMonotoneNonIncreasing(t *testing.T) {
	z, _ := NewZipf(100, 1.2)
	for r := 2; r <= 100; r++ {
		if z.Prob(r) > z.Prob(r-1)+1e-15 {
			t.Fatalf("Prob(%d)=%v > Prob(%d)=%v", r, z.Prob(r), r-1, z.Prob(r-1))
		}
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z, _ := NewZipf(10, 1)
	if z.Prob(0) != 0 || z.Prob(11) != 0 || z.Prob(-3) != 0 {
		t.Error("out-of-range rank should have zero probability")
	}
}

func TestPoissonValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPoisson(bad); err == nil {
			t.Errorf("mean %v accepted", bad)
		}
	}
	p, err := NewPoisson(30)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean() != 30 {
		t.Errorf("Mean = %v", p.Mean())
	}
}

func TestPoissonEmpiricalMean(t *testing.T) {
	p, _ := NewPoisson(30)
	rng := rand.New(rand.NewSource(4))
	const draws = 100000
	sum := 0.0
	for i := 0; i < draws; i++ {
		g := p.Next(rng)
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	mean := sum / draws
	if math.Abs(mean-30) > 0.5 {
		t.Errorf("empirical mean %v, want ~30", mean)
	}
}

func TestPoissonMemorylessVariance(t *testing.T) {
	// Exponential distribution: variance = mean^2.
	p, _ := NewPoisson(10)
	rng := rand.New(rand.NewSource(5))
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		g := p.Next(rng)
		sum += g
		sumsq += g * g
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(variance-100) > 5 {
		t.Errorf("variance = %v, want ~100", variance)
	}
}

func TestCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(CatalogConfig{Items: 0, MinSize: 1, MaxSize: 2}); err == nil {
		t.Error("0 items accepted")
	}
	if _, err := NewCatalog(CatalogConfig{Items: 5, MinSize: 0, MaxSize: 2}); err == nil {
		t.Error("MinSize 0 accepted")
	}
	if _, err := NewCatalog(CatalogConfig{Items: 5, MinSize: 10, MaxSize: 5}); err == nil {
		t.Error("Max < Min accepted")
	}
}

func TestCatalogSizesInRange(t *testing.T) {
	cfg := CatalogConfig{Items: 500, MinSize: 100, MaxSize: 1000}
	c, err := NewCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 500 {
		t.Fatalf("Len = %d", c.Len())
	}
	var total int64
	for _, k := range c.Keys() {
		it, ok := c.Item(k)
		if !ok {
			t.Fatalf("missing item %d", k)
		}
		if it.Size < 100 || it.Size > 1000 {
			t.Fatalf("item %d size %d out of range", k, it.Size)
		}
		total += int64(it.Size)
	}
	if total != c.TotalSize() {
		t.Errorf("TotalSize = %d, want %d", c.TotalSize(), total)
	}
}

func TestCatalogDeterministic(t *testing.T) {
	cfg := DefaultCatalogConfig()
	a, _ := NewCatalog(cfg)
	b, _ := NewCatalog(cfg)
	for _, k := range a.Keys() {
		if a.Size(k) != b.Size(k) {
			t.Fatalf("catalogs differ at key %d", k)
		}
	}
}

func TestCatalogMissingKey(t *testing.T) {
	c, _ := NewCatalog(CatalogConfig{Items: 10, MinSize: 1, MaxSize: 1})
	if _, ok := c.Item(Key(10)); ok {
		t.Error("Item beyond range returned ok")
	}
	if c.Size(Key(99)) != 0 {
		t.Error("Size beyond range should be 0")
	}
}

func TestCatalogSizeSpread(t *testing.T) {
	c, _ := NewCatalog(CatalogConfig{Items: 1000, MinSize: 1000, MaxSize: 10000})
	distinct := make(map[int]bool)
	for _, k := range c.Keys() {
		distinct[c.Size(k)] = true
	}
	if len(distinct) < 100 {
		t.Errorf("only %d distinct sizes over 1000 items; hash spread too weak", len(distinct))
	}
}

func TestKeyHashStable(t *testing.T) {
	if KeyHash(42) != KeyHash(42) {
		t.Error("KeyHash not deterministic")
	}
	if KeyHash(1) == KeyHash(2) {
		t.Error("trivial collision between adjacent keys")
	}
}

func newTestGenerator(t *testing.T, theta, reqInt, updInt float64) *Generator {
	t.Helper()
	c, err := NewCatalog(CatalogConfig{Items: 100, MinSize: 512, MaxSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(GeneratorConfig{
		Catalog:         c,
		ZipfTheta:       theta,
		RequestInterval: reqInt,
		UpdateInterval:  updInt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{}); err == nil {
		t.Error("nil catalog accepted")
	}
	c, _ := NewCatalog(DefaultCatalogConfig())
	if _, err := NewGenerator(GeneratorConfig{Catalog: c, ZipfTheta: -1, RequestInterval: 30}); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Catalog: c, ZipfTheta: 0.8, RequestInterval: 0}); err == nil {
		t.Error("zero request interval accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Catalog: c, ZipfTheta: 0.8, RequestInterval: 30, UpdateInterval: -5}); err == nil {
		// UpdateInterval < 0 is not explicitly rejected (treated as
		// disabled only when == 0); ensure it errors.
		t.Error("negative update interval accepted")
	}
}

func TestGeneratorUpdatesToggle(t *testing.T) {
	g := newTestGenerator(t, 0.8, 30, 0)
	if g.UpdatesEnabled() {
		t.Error("updates should be disabled")
	}
	defer func() {
		if recover() == nil {
			t.Error("NextUpdateGap with updates disabled did not panic")
		}
	}()
	g.NextUpdateGap(rand.New(rand.NewSource(1)))
}

func TestGeneratorPickKeyDistribution(t *testing.T) {
	g := newTestGenerator(t, 0.9, 30, 30)
	rng := rand.New(rand.NewSource(6))
	counts := make(map[Key]int)
	for i := 0; i < 50000; i++ {
		k := g.PickKey(rng)
		if int(k) >= g.Catalog().Len() {
			t.Fatalf("key %d out of catalog", k)
		}
		counts[k]++
	}
	if counts[Key(0)] <= counts[Key(50)] {
		t.Errorf("key 0 (%d draws) should dominate key 50 (%d draws)", counts[Key(0)], counts[Key(50)])
	}
}

func TestGeneratorGapPositivity(t *testing.T) {
	g := newTestGenerator(t, 0.8, 30, 60)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if g.NextRequestGap(rng) < 0 {
			t.Fatal("negative request gap")
		}
		if g.NextUpdateGap(rng) < 0 {
			t.Fatal("negative update gap")
		}
	}
}
