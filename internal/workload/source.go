package workload

import (
	"fmt"
	"math/rand"
)

// Locator resolves a peer's current position in meters. The node layer
// provides an adapter over the radio channel; geo-aware sources (the
// region-correlated hotspot) call it lazily, so sources that ignore
// geometry cost the simulation no position lookups at all.
type Locator interface {
	Locate(peer int) (x, y float64)
}

// Ctx carries the per-event context a Source may consult when drawing
// the next gap or key. RNG is the requesting peer's own stream — every
// draw a source makes must come from it (or from a dedicated stream the
// source registered at build time), never from global state, so runs
// stay deterministic and checkpoint-exact. Loc may be nil in harnesses
// without geometry; only geo-aware sources dereference it.
type Ctx struct {
	Peer int
	Now  float64
	RNG  *rand.Rand
	Loc  Locator
}

// SourceState is the serializable snapshot of a Source. Kind always
// names the source; the remaining fields are used by whichever source
// kinds need them and stay empty otherwise. One open struct (rather
// than per-kind opaque blobs) keeps the checkpoint container inspectable
// and DeepEqual-comparable.
type SourceState struct {
	Kind string
	// Epoch and Perm carry the rank-churn source's reshuffle state.
	Epoch int64
	Perm  []uint32
	// Requests and Updates carry the trace source's per-peer replay
	// cursors.
	Requests []int64
	Updates  []int64
}

// Source is the workload driver contract: it answers "when is this
// peer's next request/update and for which key". Implementations must
// be deterministic given the Ctx stream states and must draw the same
// number of variates for the same call sequence regardless of wall
// conditions, so that checkpoint/restore replays bit-identically.
//
// StateSnapshot/RestoreState capture any mutable state beyond the RNG
// streams (which the sim.RNG registry snapshots separately). Stateless
// sources return just their Kind and validate it on restore.
type Source interface {
	// Kind names the source ("default", "trace", "flash-crowd", ...).
	Kind() string
	// Catalog returns the shared item catalog this source draws over.
	Catalog() *Catalog
	// NextRequestGap draws the time until the peer's next request.
	NextRequestGap(c Ctx) float64
	// PickKey draws the key of a request firing now.
	PickKey(c Ctx) Key
	// UpdatesEnabled reports whether the source generates updates.
	UpdatesEnabled() bool
	// NextUpdateGap draws the time until the peer's next update. Panics
	// if updates are disabled; call UpdatesEnabled first.
	NextUpdateGap(c Ctx) float64
	// PickUpdateKey draws the target of an update firing now.
	PickUpdateKey(c Ctx) Key
	// StateSnapshot captures the source's mutable state.
	StateSnapshot() SourceState
	// RestoreState adopts a snapshot taken from an identically
	// configured source.
	RestoreState(SourceState) error
}

// Source kind names, as they appear in Scenario.Workload and in
// checkpoint SourceState records.
const (
	KindDefault    = "default"
	KindTrace      = "trace"
	KindFlashCrowd = "flash-crowd"
	KindDiurnal    = "diurnal"
	KindHotspot    = "hotspot"
	KindRankChurn  = "rank-churn"
)

// DefaultSource adapts the stationary Zipf/Poisson Generator to the
// Source interface. It delegates every draw to the generator with the
// context's RNG in the same order the pre-Source code used, so the
// default workload path stays byte-identical to the original behavior
// (pinned by TestWorkloadDefaultGolden at the repository root).
type DefaultSource struct {
	Gen *Generator
}

// Kind returns KindDefault.
func (s DefaultSource) Kind() string { return KindDefault }

// Catalog returns the generator's catalog.
func (s DefaultSource) Catalog() *Catalog { return s.Gen.Catalog() }

// NextRequestGap draws from the Poisson request process.
func (s DefaultSource) NextRequestGap(c Ctx) float64 { return s.Gen.NextRequestGap(c.RNG) }

// PickKey draws a Zipf-popular key.
func (s DefaultSource) PickKey(c Ctx) Key { return s.Gen.PickKey(c.RNG) }

// UpdatesEnabled reports whether the generator has an update process.
func (s DefaultSource) UpdatesEnabled() bool { return s.Gen.UpdatesEnabled() }

// NextUpdateGap draws from the Poisson update process.
func (s DefaultSource) NextUpdateGap(c Ctx) float64 { return s.Gen.NextUpdateGap(c.RNG) }

// PickUpdateKey draws an update target.
func (s DefaultSource) PickUpdateKey(c Ctx) Key { return s.Gen.PickUpdateKey(c.RNG) }

// StateSnapshot returns the kind tag: all the default source's
// randomness lives in the peer RNG streams, which the RNG registry
// snapshots on its own.
func (s DefaultSource) StateSnapshot() SourceState { return SourceState{Kind: KindDefault} }

// RestoreState validates the kind tag.
func (s DefaultSource) RestoreState(st SourceState) error {
	return requireKind(st, KindDefault, false)
}

// requireKind validates a snapshot's kind tag and — for stateless
// sources (wantCursors false) — that no stray state rode along.
func requireKind(st SourceState, kind string, wantCursors bool) error {
	if st.Kind != kind {
		return fmt.Errorf("workload: snapshot is for source %q, this run uses %q", st.Kind, kind)
	}
	if !wantCursors && (len(st.Requests) != 0 || len(st.Updates) != 0) {
		return fmt.Errorf("workload: %s snapshot carries replay cursors", kind)
	}
	return nil
}

// splitmix64 is the SplitMix64 mixer, used to derive per-source
// constants (hotset membership, per-cell popularity) from the scenario
// seed without touching any RNG stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
