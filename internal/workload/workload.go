// Package workload generates the synthetic access patterns from the
// paper's Section 6.1: every peer issues requests whose inter-arrival
// times follow a Poisson process (exponential gaps, mean 30 s by default)
// and whose targets follow a Zipf distribution over a fixed catalog of
// data items; updates arrive as an independent Poisson process.
//
// The catalog replaces the paper's unspecified "database": item sizes are
// drawn deterministically per key so that every scheme in a comparison
// sees exactly the same data set.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf samples ranks 1..n with probability proportional to 1/rank^theta.
// theta = 0 degenerates to uniform; larger theta skews toward low ranks.
//
// The stdlib rand.Zipf requires s > 1, which excludes the range the paper
// sweeps (skew parameters are conventionally 0..1 in the caching
// literature), so we implement inverse-CDF sampling over the finite
// support instead.
type Zipf struct {
	n     int
	theta float64
	cdf   []float64 // cdf[i] = P(rank <= i+1)
}

// NewZipf returns a sampler over ranks 1..n with skew theta >= 0.
func NewZipf(n int, theta float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf support must be positive, got %d", n)
	}
	if theta < 0 || math.IsNaN(theta) {
		return nil, fmt.Errorf("workload: zipf skew must be >= 0, got %v", theta)
	}
	z := &Zipf{n: n, theta: theta, cdf: make([]float64, n)}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	z.cdf[n-1] = 1 // guard against rounding leaving the last bin short
	return z, nil
}

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Rank draws a rank in [1, n].
func (z *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Prob returns the probability mass of the given rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank < 1 || rank > z.n {
		return 0
	}
	if rank == 1 {
		return z.cdf[0]
	}
	return z.cdf[rank-1] - z.cdf[rank-2]
}

// Poisson models an arrival process with exponentially distributed gaps.
type Poisson struct {
	mean float64
}

// NewPoisson returns a process with the given mean inter-arrival time in
// seconds.
func NewPoisson(meanInterval float64) (*Poisson, error) {
	if meanInterval <= 0 || math.IsNaN(meanInterval) || math.IsInf(meanInterval, 0) {
		return nil, fmt.Errorf("workload: poisson mean interval must be positive and finite, got %v", meanInterval)
	}
	return &Poisson{mean: meanInterval}, nil
}

// Mean returns the configured mean inter-arrival time.
func (p *Poisson) Mean() float64 { return p.mean }

// Next draws the gap to the next arrival in seconds.
func (p *Poisson) Next(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * p.mean
}

// Key identifies a data item in the shared catalog.
type Key uint32

// Item describes one entry of the catalog.
type Item struct {
	Key  Key
	Size int // bytes
}

// Catalog is the fixed set of data items shared by the whole network.
// Sizes are derived deterministically from the key so that two catalogs
// built with the same parameters are identical.
type Catalog struct {
	items     []Item
	totalSize int64
}

// CatalogConfig parameterizes catalog construction.
type CatalogConfig struct {
	Items   int // number of distinct data items
	MinSize int // bytes, inclusive
	MaxSize int // bytes, inclusive
}

// DefaultCatalogConfig mirrors the scale used in the paper's simulations:
// a database of 1000 items with sizes around a few kilobytes.
func DefaultCatalogConfig() CatalogConfig {
	return CatalogConfig{Items: 1000, MinSize: 1024, MaxSize: 10 * 1024}
}

// NewCatalog builds the item set. Item sizes are spread over
// [MinSize, MaxSize] by hashing the key, so they are independent of access
// order and of the RNG streams used elsewhere.
func NewCatalog(cfg CatalogConfig) (*Catalog, error) {
	if cfg.Items <= 0 {
		return nil, fmt.Errorf("workload: catalog needs at least one item, got %d", cfg.Items)
	}
	if cfg.MinSize <= 0 || cfg.MaxSize < cfg.MinSize {
		return nil, fmt.Errorf("workload: invalid size range [%d, %d]", cfg.MinSize, cfg.MaxSize)
	}
	c := &Catalog{items: make([]Item, cfg.Items)}
	span := cfg.MaxSize - cfg.MinSize + 1
	for i := range c.items {
		k := Key(i)
		size := cfg.MinSize + int(keyHash(k)%uint64(span))
		c.items[i] = Item{Key: k, Size: size}
		c.totalSize += int64(size)
	}
	return c, nil
}

// keyHash is FNV-1a over the key's four bytes; shared with the geographic
// hash in internal/region so a key's identity is uniform everywhere.
func keyHash(k Key) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for shift := 0; shift < 32; shift += 8 {
		h ^= uint64(byte(k >> shift))
		h *= prime64
	}
	return h
}

// KeyHash exposes the canonical 64-bit hash of a key.
func KeyHash(k Key) uint64 { return keyHash(k) }

// Len returns the number of items.
func (c *Catalog) Len() int { return len(c.items) }

// TotalSize returns the sum of all item sizes in bytes.
func (c *Catalog) TotalSize() int64 { return c.totalSize }

// Item returns the catalog entry for a key.
func (c *Catalog) Item(k Key) (Item, bool) {
	if int(k) >= len(c.items) {
		return Item{}, false
	}
	return c.items[k], true
}

// Size returns the size in bytes of the item for key k, or 0 if the key is
// not in the catalog.
func (c *Catalog) Size(k Key) int {
	if int(k) >= len(c.items) {
		return 0
	}
	return c.items[k].Size
}

// Keys returns all keys in ascending order. The returned slice is fresh
// and may be mutated by the caller.
func (c *Catalog) Keys() []Key {
	keys := make([]Key, len(c.items))
	for i := range c.items {
		keys[i] = Key(i)
	}
	return keys
}

// Generator combines the catalog with the stochastic processes into the
// per-peer driver the simulation installs: it answers "when is this peer's
// next request/update and for which key".
type Generator struct {
	catalog   *Catalog
	popular   *Zipf
	updateKey *Zipf
	requests  *Poisson
	updates   *Poisson
}

// GeneratorConfig parameterizes a Generator.
type GeneratorConfig struct {
	Catalog         *Catalog
	ZipfTheta       float64 // request skew
	UpdateZipfTheta float64 // update target skew; 0 = uniform across items
	RequestInterval float64 // mean seconds between requests per peer
	UpdateInterval  float64 // mean seconds between updates per peer; 0 disables updates
}

// NewGenerator validates the configuration and builds the driver.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("workload: generator requires a catalog")
	}
	z, err := NewZipf(cfg.Catalog.Len(), cfg.ZipfTheta)
	if err != nil {
		return nil, err
	}
	req, err := NewPoisson(cfg.RequestInterval)
	if err != nil {
		return nil, fmt.Errorf("workload: request process: %w", err)
	}
	uz, err := NewZipf(cfg.Catalog.Len(), cfg.UpdateZipfTheta)
	if err != nil {
		return nil, fmt.Errorf("workload: update key distribution: %w", err)
	}
	g := &Generator{catalog: cfg.Catalog, popular: z, updateKey: uz, requests: req}
	if cfg.UpdateInterval < 0 {
		return nil, fmt.Errorf("workload: update interval must be >= 0 (0 disables updates), got %v", cfg.UpdateInterval)
	}
	if cfg.UpdateInterval > 0 {
		upd, err := NewPoisson(cfg.UpdateInterval)
		if err != nil {
			return nil, fmt.Errorf("workload: update process: %w", err)
		}
		g.updates = upd
	}
	return g, nil
}

// Catalog returns the shared catalog.
func (g *Generator) Catalog() *Catalog { return g.catalog }

// NextRequestGap draws the time until the peer's next request.
func (g *Generator) NextRequestGap(rng *rand.Rand) float64 {
	return g.requests.Next(rng)
}

// UpdatesEnabled reports whether the scenario generates updates at all.
func (g *Generator) UpdatesEnabled() bool { return g.updates != nil }

// NextUpdateGap draws the time until the peer's next update. It panics if
// updates are disabled; call UpdatesEnabled first.
func (g *Generator) NextUpdateGap(rng *rand.Rand) float64 {
	if g.updates == nil {
		panic("workload: updates disabled")
	}
	return g.updates.Next(rng)
}

// PickKey draws a request key by popularity. Zipf rank r maps to
// Key(r-1): key 0 is the most popular item.
func (g *Generator) PickKey(rng *rand.Rand) Key {
	return Key(g.popular.Rank(rng) - 1)
}

// PickUpdateKey draws the target of an update, using the (usually less
// skewed) update-key distribution.
func (g *Generator) PickUpdateKey(rng *rand.Rand) Key {
	return Key(g.updateKey.Rank(rng) - 1)
}
