package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseTraceBasic(t *testing.T) {
	in := strings.Join([]string{
		"op,key,key_size,size", // header
		"",
		"# comment",
		"GET,alpha,5,100",
		"SET,beta,4,200",
		"get,alpha,5,100", // ops are case-insensitive
		"DELETE,beta,4,0",
		"GET,beta,4,200",
	}, "\n")
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Gets() != 3 || tr.Sets() != 1 || tr.Deletes() != 1 {
		t.Fatalf("got %d/%d/%d gets/sets/deletes, want 3/1/1", tr.Gets(), tr.Sets(), tr.Deletes())
	}
	if tr.DistinctKeys() != 2 {
		t.Fatalf("got %d distinct keys, want 2", tr.DistinctKeys())
	}
	cat := tr.BuildCatalog()
	if cat.Len() != 2 {
		t.Fatalf("catalog has %d items, want 2", cat.Len())
	}
	// alpha appears first, so it is Key(0); sizes come from the trace.
	if got := cat.Size(Key(0)); got != 100 {
		t.Errorf("alpha size = %d, want 100", got)
	}
	if got := cat.Size(Key(1)); got != 200 {
		t.Errorf("beta size = %d, want 200", got)
	}
}

func TestParseTraceZeroSizeClamps(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("GET,k,1,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.BuildCatalog().Size(Key(0)); got != 1 {
		t.Errorf("zero-size item clamps to %d, want 1", got)
	}
}

func TestParseTraceMalformed(t *testing.T) {
	cases := map[string]string{
		"fields":     "GET,k,1\n",
		"extra":      "GET,k,1,2,3\n",
		"op":         "FROB,k,1,2\n",
		"empty-key":  "GET,,0,2\n",
		"huge-key":   "GET," + strings.Repeat("k", maxTraceKeyLen+1) + ",1,2\n",
		"key-size":   "GET,k,x,2\n",
		"size":       "GET,k,1,x\n",
		"neg-size":   "GET,k,1,-5\n",
		"huge-size":  "GET,k,1,99999999999\n",
		"bare-text":  "hello world\n",
		"long-line":  "GET,k,1," + strings.Repeat("9", maxTraceLine) + "\n",
		"mid-header": "GET,k,1,2\nop,key,key_size,size\n",
	}
	for name, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: malformed trace parsed without error", name)
		}
	}
}

func TestTraceSourceStriding(t *testing.T) {
	// Three GETs over two peers: peer p's k-th request must take global
	// index (p + 2k) mod 3, touching every row before wrapping.
	tr, err := ParseTrace(strings.NewReader("GET,a,1,10\nGET,b,1,10\nGET,c,1,10\n"))
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewTraceSource(TraceSourceConfig{Trace: tr, Peers: 2, RequestInterval: 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var got []Key
	for k := 0; k < 3; k++ {
		for p := 0; p < 2; p++ {
			got = append(got, src.PickKey(Ctx{Peer: p, RNG: rng}))
		}
	}
	// gets = [a b c]; peer0: 0,2,(4%3)=1 -> a c b; peer1: 1,(3%3)=0,(5%3)=2 -> b a c
	want := []Key{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaved picks = %v, want %v", got, want)
		}
	}
}

func TestTraceSourceRejects(t *testing.T) {
	noGets, err := ParseTrace(strings.NewReader("SET,a,1,10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTraceSource(TraceSourceConfig{Trace: noGets, Peers: 1, RequestInterval: 30}); err == nil {
		t.Error("trace without GETs accepted")
	}
	noSets, err := ParseTrace(strings.NewReader("GET,a,1,10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTraceSource(TraceSourceConfig{Trace: noSets, Peers: 1, RequestInterval: 30, UpdateInterval: 10}); err == nil {
		t.Error("update interval without SET rows accepted")
	}
}

func TestTraceSourceSnapshotRestore(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("GET,a,1,10\nGET,b,1,20\nSET,a,1,10\nSET,b,1,20\n"))
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *TraceSource {
		s, err := NewTraceSource(TraceSourceConfig{Trace: tr, Peers: 3, RequestInterval: 30, UpdateInterval: 60})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mk()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 7; i++ {
		a.PickKey(Ctx{Peer: i % 3, RNG: rng})
	}
	a.PickUpdateKey(Ctx{Peer: 1, RNG: rng})

	b := mk()
	if err := b.RestoreState(a.StateSnapshot()); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		ka := a.PickKey(Ctx{Peer: p, RNG: rng})
		kb := b.PickKey(Ctx{Peer: p, RNG: rng})
		if ka != kb {
			t.Fatalf("peer %d: restored source picked %d, original %d", p, kb, ka)
		}
	}

	if err := b.RestoreState(SourceState{Kind: KindDefault}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := b.RestoreState(SourceState{Kind: KindTrace, Requests: []int64{1}}); err == nil {
		t.Error("cursor count mismatch accepted")
	}
}

func TestSyntheticTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := SyntheticTraceConfig{
		Ops: 500, Keys: 40, ZipfTheta: 0.9,
		SetFraction: 0.2, DeleteFraction: 0.1,
		MinSize: 100, MaxSize: 999, Seed: 7,
	}
	if err := WriteSyntheticTrace(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	tr, err := ParseTrace(strings.NewReader(first))
	if err != nil {
		t.Fatalf("synthetic trace does not parse: %v", err)
	}
	if tr.Gets()+tr.Sets()+tr.Deletes() != cfg.Ops {
		t.Errorf("parsed %d ops, wrote %d", tr.Gets()+tr.Sets()+tr.Deletes(), cfg.Ops)
	}
	if tr.DistinctKeys() > cfg.Keys {
		t.Errorf("%d distinct keys exceed the %d-key population", tr.DistinctKeys(), cfg.Keys)
	}
	// Determinism: same config, same bytes.
	var buf2 bytes.Buffer
	if err := WriteSyntheticTrace(&buf2, cfg); err != nil {
		t.Fatal(err)
	}
	if first != buf2.String() {
		t.Error("synthetic trace generation is not deterministic")
	}
}

func TestSampleTraceFixture(t *testing.T) {
	tr, err := ReadTraceFile("testdata/sample_trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Gets() == 0 || tr.Sets() == 0 {
		t.Fatalf("sample trace has %d GETs / %d SETs; both must be present for the smoke runs", tr.Gets(), tr.Sets())
	}
	if _, err := NewTraceSource(TraceSourceConfig{
		Trace: tr, Peers: 20, RequestInterval: 30, UpdateInterval: 60,
	}); err != nil {
		t.Fatal(err)
	}
}
