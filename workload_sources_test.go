package precinct_test

// System-level proofs for the workload lab (DESIGN.md section 15):
// every non-default source must be deterministic under a fixed seed,
// resume from a checkpoint bit-identically, and hold the invariant
// catalog — the same bar the default workload has cleared since PR 2/3.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"precinct"
	"precinct/internal/invariant/fuzzgen"
)

// sampleTracePath is the committed cachelib-format fixture; see
// internal/workload/gentrace for its provenance.
const sampleTracePath = "internal/workload/testdata/sample_trace.csv"

// workloadScenario builds a scenario running the given source kind,
// derived from a fuzzgen seed so the suites sweep mobility models,
// retrieval schemes and consistency configurations too.
func workloadScenario(seed int64, kind string) precinct.Scenario {
	s := fuzzgen.Expand(seed)
	s.Shards = 0
	s.Workload = kind
	s.Name = s.Name + "/" + kind
	if kind == "trace" {
		s.TracePath = sampleTracePath
		// The sample trace carries SET rows; replay them whenever the
		// expanded scenario did not already enable a write workload.
		if s.UpdateInterval == 0 {
			s.UpdateInterval = 45
			s.Consistency = "push-adaptive-pull"
		}
	}
	return s
}

func workloadKindsUnderTest() []string {
	return []string{"trace", "flash-crowd", "diurnal", "hotspot", "rank-churn"}
}

// TestWorkloadSourceDeterminism runs every source twice under the same
// seed: the trace streams must be byte-identical and the results
// DeepEqual, or the source leaked nondeterminism into the run.
func TestWorkloadSourceDeterminism(t *testing.T) {
	for i, kind := range workloadKindsUnderTest() {
		sc := workloadScenario(int64(20+i), kind)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res1, trace1 := runTracedBytes(t, sc)
			res2, trace2 := runTracedBytes(t, sc)
			if !bytes.Equal(trace1, trace2) {
				t.Errorf("%s: two runs under one seed produced different trace streams (%d vs %d bytes)",
					kind, len(trace1), len(trace2))
			}
			if !reflect.DeepEqual(res1, res2) {
				t.Errorf("%s: two runs under one seed produced different results", kind)
			}
			if res1.Report.Requests == 0 {
				t.Errorf("%s: run issued no requests", kind)
			}
		})
	}
}

// TestWorkloadResumeEquivalence checkpoints each source mid-flight and
// resumes: result and concatenated trace stream must be bit-identical
// to the uninterrupted run. This exercises the v4 workload section —
// trace cursors and the rank-churn permutation cross the snapshot here.
func TestWorkloadResumeEquivalence(t *testing.T) {
	kinds := workloadKindsUnderTest()
	if testing.Short() {
		kinds = []string{"trace", "rank-churn"} // the stateful ones
	}
	for i, kind := range kinds {
		sc := workloadScenario(int64(30+i), kind)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			var bufFull bytes.Buffer
			full, err := precinct.RunTraced(sc, &bufFull)
			if err != nil {
				t.Fatalf("RunTraced: %v", err)
			}
			dir := t.TempDir()
			mid := sc.Warmup + (sc.Duration-sc.Warmup)/2
			var buf1, buf2 bytes.Buffer
			if _, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Interval: 15, StopAfter: mid, TraceWriter: &buf1,
			}); err != nil {
				t.Fatalf("interrupted run: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, "run.ckpt")); err != nil {
				t.Fatalf("no snapshot after StopAfter: %v", err)
			}
			resumed, err := precinct.RunCheckpointed(sc, precinct.CheckpointOptions{
				Dir: dir, Label: "run", Interval: 15, Resume: true, TraceWriter: &buf2,
			})
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !reflect.DeepEqual(resumed, full) {
				t.Errorf("%s: resumed result differs from uninterrupted run:\n resumed: %+v\n full:    %+v",
					kind, resumed.Report, full.Report)
			}
			joined := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
			if !bytes.Equal(joined, bufFull.Bytes()) {
				t.Errorf("%s: trace streams differ: interrupted %d + resumed %d bytes vs full %d bytes",
					kind, buf1.Len(), buf2.Len(), bufFull.Len())
			}
		})
	}
}

// TestWorkloadInvariants runs fuzzgen's workload variants (randomized
// source parameters over randomized base scenarios) plus a trace run
// under the full invariant catalog.
func TestWorkloadInvariants(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 2
	}
	scs := make([]precinct.Scenario, 0, n+1)
	for seed := int64(1); seed <= int64(n); seed++ {
		scs = append(scs, fuzzgen.WithWorkload(fuzzgen.Expand(seed), seed))
	}
	scs = append(scs, workloadScenario(40, "trace"))
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, inv, err := precinct.RunChecked(sc)
			if err != nil {
				t.Fatalf("RunChecked: %v", err)
			}
			if !inv.Ok() {
				t.Fatalf("invariant violations: %s", inv)
			}
			if res.Report.Requests == 0 {
				t.Error("run issued no requests")
			}
		})
	}
}

// TestWorkloadScenarioValidation pins the wiring error paths: unknown
// kinds, stray or missing trace paths, and the sharded-run gate.
func TestWorkloadScenarioValidation(t *testing.T) {
	base := fuzzgen.Expand(50)

	s := base
	s.Workload = "tidal"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown workload: err = %v", err)
	}

	s = base
	s.TracePath = sampleTracePath
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "TracePath") {
		t.Errorf("stray TracePath: err = %v", err)
	}

	s = base
	s.Workload = "trace"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "TracePath") {
		t.Errorf("missing TracePath: err = %v", err)
	}

	s = base
	s.Workload = "trace"
	s.TracePath = filepath.Join(t.TempDir(), "absent.csv")
	if err := s.Validate(); err == nil {
		t.Error("nonexistent trace file accepted")
	}

	s = precinct.DefaultScenario()
	s.Duration, s.Warmup = 60, 10
	s.Shards = 2
	s.Workload = "flash-crowd"
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Errorf("sharded non-default workload: err = %v", err)
	}
	s.Workload = "default"
	if err := s.Validate(); err != nil {
		t.Errorf("sharded default workload rejected: %v", err)
	}
}

// TestTraceWorkloadCatalogFromTrace checks the trace path derives its
// catalog from the trace (60 distinct keys in the fixture), ignoring
// the scenario's Items knob.
func TestTraceWorkloadCatalogFromTrace(t *testing.T) {
	sc := workloadScenario(60, "trace")
	sc.Items = 5 // would be an absurd catalog if honored
	res, err := precinct.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests == 0 {
		t.Fatal("trace run issued no requests")
	}
}
