package precinct

import (
	"fmt"
	"strings"

	"precinct/internal/analysis"
	"precinct/internal/energy"
)

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproduced table/figure: the same rows/series the paper
// plots, as numbers.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the figure as an aligned text table, one row per X
// value, one column per series.
func (f Figure) String() string {
	out := fmt.Sprintf("%s: %s\n%12s", f.ID, f.Title, f.XLabel)
	for _, s := range f.Series {
		out += fmt.Sprintf("  %22s", s.Label)
	}
	out += "\n"
	if len(f.Series) == 0 {
		return out
	}
	for i := range f.Series[0].X {
		out += fmt.Sprintf("%12.3g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				out += fmt.Sprintf("  %22.6g", s.Y[i])
			}
		}
		out += "\n"
	}
	return out
}

// CSV renders the figure as comma-separated values: a header of
// x-label and series labels, then one row per x value. Series are
// aligned by index; shorter series leave trailing cells empty.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Label))
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	rows := 0
	for _, s := range f.Series {
		if len(s.X) > rows {
			rows = len(s.X)
		}
	}
	for i := 0; i < rows; i++ {
		if i < len(f.Series[0].X) {
			fmt.Fprintf(&b, "%g", f.Series[0].X[i])
		}
		for _, s := range f.Series {
			b.WriteByte(',')
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%g", s.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// ExperimentConfig controls how much work a figure reproduction does.
// The zero value is replaced by paper-scale defaults; benchmarks shrink
// Duration/Nodes to keep iterations fast.
type ExperimentConfig struct {
	// Seed feeds every scenario of the experiment.
	Seed int64
	// Workers bounds sweep parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Duration and Warmup override the simulated time when positive.
	Duration float64
	Warmup   float64
	// Nodes overrides the scenario node count when positive.
	Nodes int
	// Items overrides the catalog size when positive.
	Items int
}

func (c ExperimentConfig) apply(s *Scenario) {
	if c.Seed != 0 {
		s.Seed = c.Seed
	}
	if c.Duration > 0 {
		s.Duration = c.Duration
	}
	if c.Warmup >= 0 && c.Warmup < s.Duration {
		if c.Warmup > 0 {
			s.Warmup = c.Warmup
		}
	}
	if s.Warmup >= s.Duration {
		s.Warmup = s.Duration / 4
	}
	if c.Nodes > 0 {
		s.Nodes = c.Nodes
	}
	if c.Items > 0 {
		s.Items = c.Items
	}
}

// CachePercents are the cache sizes (fraction of the database) Figures 4
// and 5 sweep.
var CachePercents = []float64{0.005, 0.010, 0.015, 0.020, 0.025}

// cacheScenario is the Figures 4/5 environment: 80 nodes at 6 m/s.
func cacheScenario(policy string, frac float64) Scenario {
	s := DefaultScenario()
	s.Name = fmt.Sprintf("cache/%s/%.3f", policy, frac)
	s.Nodes = 80
	s.MaxSpeed = 6
	s.Policy = policy
	s.CacheFraction = frac
	s.UpdateInterval = 0
	s.Consistency = "none"
	return s
}

// Fig4And5 reproduces Figure 4 (latency vs cache size) and Figure 5
// (byte hit ratio vs cache size) for GD-LD vs GD-Size from one sweep.
func Fig4And5(cfg ExperimentConfig) (fig4, fig5 Figure, err error) {
	policies := []string{"GD-LD", "GD-Size"}
	keys := []string{"gd-ld", "gd-size"}
	var scenarios []Scenario
	for _, key := range keys {
		for _, frac := range CachePercents {
			s := cacheScenario(key, frac)
			cfg.apply(&s)
			scenarios = append(scenarios, s)
		}
	}
	results, err := Sweep(scenarios, cfg.Workers)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	fig4 = Figure{ID: "fig4", Title: "Variation of latency with cache size (80 nodes, 6 m/s)",
		XLabel: "cache %", YLabel: "latency/request (s)"}
	fig5 = Figure{ID: "fig5", Title: "Variation of byte hit ratio with cache size",
		XLabel: "cache %", YLabel: "byte hit ratio"}
	idx := 0
	for pi := range keys {
		lat := Series{Label: policies[pi]}
		bhr := Series{Label: policies[pi]}
		for _, frac := range CachePercents {
			r := results[idx].Report
			idx++
			lat.X = append(lat.X, frac*100)
			lat.Y = append(lat.Y, r.MeanLatency)
			bhr.X = append(bhr.X, frac*100)
			bhr.Y = append(bhr.Y, r.ByteHitRatio)
		}
		fig4.Series = append(fig4.Series, lat)
		fig5.Series = append(fig5.Series, bhr)
	}
	return fig4, fig5, nil
}

// UpdateRatios are the T_update/T_request points of Figures 6–8.
var UpdateRatios = []float64{1, 2, 3, 4, 5}

// consistencyScenario is the Figures 6–8 environment.
func consistencyScenario(scheme string, ratio float64) Scenario {
	s := DefaultScenario()
	s.Name = fmt.Sprintf("consistency/%s/%.0f", scheme, ratio)
	s.Nodes = 80
	s.MaxSpeed = 6
	s.Consistency = scheme
	s.UpdateInterval = s.RequestInterval * ratio
	return s
}

// Fig6To8 reproduces Figure 6 (control message overhead), Figure 7 (false
// hit ratio) and Figure 8 (latency) versus the update rate for the three
// consistency schemes, from one sweep.
func Fig6To8(cfg ExperimentConfig) (fig6, fig7, fig8 Figure, err error) {
	labels := []string{"Plain-Push", "Pull-Every-time", "Push-with-Adaptive-Pull"}
	keys := []string{"plain-push", "pull-every-time", "push-adaptive-pull"}
	var scenarios []Scenario
	for _, key := range keys {
		for _, ratio := range UpdateRatios {
			s := consistencyScenario(key, ratio)
			cfg.apply(&s)
			scenarios = append(scenarios, s)
		}
	}
	results, err := Sweep(scenarios, cfg.Workers)
	if err != nil {
		return Figure{}, Figure{}, Figure{}, err
	}
	fig6 = Figure{ID: "fig6", Title: "Effect of update rate on control message overhead",
		XLabel: "Tupd/Treq", YLabel: "control messages"}
	fig7 = Figure{ID: "fig7", Title: "Effect of update rate on false hit ratio",
		XLabel: "Tupd/Treq", YLabel: "false hit ratio"}
	fig8 = Figure{ID: "fig8", Title: "Effect of update rate on latency per request",
		XLabel: "Tupd/Treq", YLabel: "latency/request (s)"}
	idx := 0
	for si := range keys {
		ctrl := Series{Label: labels[si]}
		fhr := Series{Label: labels[si]}
		lat := Series{Label: labels[si]}
		for _, ratio := range UpdateRatios {
			r := results[idx].Report
			idx++
			ctrl.X = append(ctrl.X, ratio)
			ctrl.Y = append(ctrl.Y, float64(r.ControlMessages))
			fhr.X = append(fhr.X, ratio)
			fhr.Y = append(fhr.Y, r.FalseHitRatio)
			lat.X = append(lat.X, ratio)
			lat.Y = append(lat.Y, r.MeanLatency)
		}
		fig6.Series = append(fig6.Series, ctrl)
		fig7.Series = append(fig7.Series, fhr)
		fig8.Series = append(fig8.Series, lat)
	}
	return fig6, fig7, fig8, nil
}

// Fig9aNodes are the node counts of Figure 9(a).
var Fig9aNodes = []int{20, 40, 60, 80}

// validationScenario is the Section 6.2.3 static validation topology:
// 600×600 m, no dynamic cache, no updates, no warmup.
func validationScenario(retrieval string, nodes, regions int) Scenario {
	s := DefaultScenario()
	s.Name = fmt.Sprintf("validate/%s/n%d/r%d", retrieval, nodes, regions)
	s.Mobile = false
	s.AreaSide = 600
	s.Nodes = nodes
	s.Regions = regions
	s.Retrieval = retrieval
	s.CacheFraction = -1
	s.UpdateInterval = 0
	s.Consistency = "none"
	s.Replication = false
	s.EnRoute = false
	s.Warmup = 0
	s.Duration = 1000
	return s
}

// analysisParams mirrors the validation scenario in the closed forms.
func analysisParams(s Scenario) analysis.Params {
	return analysis.Params{
		Model:        energy.DefaultModel(),
		N:            s.Nodes,
		AreaSide:     s.AreaSide,
		Range:        s.Range,
		Regions:      s.Regions,
		RequestBytes: 64 + 64, // control payload + radio header
		ReplyBytes:   (s.MinItemSize+s.MaxItemSize)/2 + 64,
	}
}

// Fig9a reproduces Figure 9(a): energy per request versus node count for
// flooding and PReCinCt, simulation next to the Section 5 theory.
func Fig9a(cfg ExperimentConfig) (Figure, error) {
	nodes := Fig9aNodes
	if cfg.Nodes > 0 {
		// A nodes override caps the sweep for cheap benchmark runs.
		nodes = nil
		for _, n := range Fig9aNodes {
			if n <= cfg.Nodes {
				nodes = append(nodes, n)
			}
		}
		if len(nodes) == 0 {
			nodes = []int{cfg.Nodes}
		}
	}
	var scenarios []Scenario
	for _, scheme := range []string{"precinct", "flooding"} {
		for _, n := range nodes {
			s := validationScenario(scheme, n, 9)
			c := cfg
			c.Nodes = 0 // node count is the x axis; don't override
			c.apply(&s)
			scenarios = append(scenarios, s)
		}
	}
	results, err := Sweep(scenarios, cfg.Workers)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{ID: "fig9a", Title: "Energy per request vs nodes (600x600 static)",
		XLabel: "nodes", YLabel: "energy/request (mJ)"}
	simPC := Series{Label: "PReCinCt sim"}
	simFL := Series{Label: "Flooding sim"}
	idx := 0
	for _, n := range nodes {
		r := results[idx].Report
		idx++
		simPC.X = append(simPC.X, float64(n))
		simPC.Y = append(simPC.Y, r.EnergyPerRequest)
	}
	for _, n := range nodes {
		r := results[idx].Report
		idx++
		simFL.X = append(simFL.X, float64(n))
		simFL.Y = append(simFL.Y, r.EnergyPerRequest)
	}
	base := analysisParams(validationScenario("precinct", nodes[0], 9))
	thPC, err := analysis.PReCinCtVsNodes(base, nodes)
	if err != nil {
		return Figure{}, err
	}
	thFL, err := analysis.FloodingVsNodes(base, nodes)
	if err != nil {
		return Figure{}, err
	}
	theoryPC := Series{Label: "PReCinCt theory"}
	theoryFL := Series{Label: "Flooding theory"}
	for i := range thPC {
		theoryPC.X = append(theoryPC.X, thPC[i].X)
		theoryPC.Y = append(theoryPC.Y, thPC[i].Y)
		theoryFL.X = append(theoryFL.X, thFL[i].X)
		theoryFL.Y = append(theoryFL.Y, thFL[i].Y)
	}
	fig.Series = []Series{theoryPC, simPC, theoryFL, simFL}
	return fig, nil
}

// Fig9bRegions are the region counts of Figure 9(b).
var Fig9bRegions = []int{1, 4, 9, 16, 25}

// Fig9b reproduces Figure 9(b): PReCinCt energy per request versus the
// number of regions at 20 nodes, simulation next to theory.
func Fig9b(cfg ExperimentConfig) (Figure, error) {
	nodes := 20
	if cfg.Nodes > 0 {
		nodes = cfg.Nodes
	}
	var scenarios []Scenario
	for _, k := range Fig9bRegions {
		s := validationScenario("precinct", nodes, k)
		c := cfg
		c.Nodes = 0
		c.apply(&s)
		scenarios = append(scenarios, s)
	}
	results, err := Sweep(scenarios, cfg.Workers)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{ID: "fig9b", Title: "Energy per request vs number of regions (static)",
		XLabel: "regions", YLabel: "energy/request (mJ)"}
	simS := Series{Label: "PReCinCt sim"}
	for i, k := range Fig9bRegions {
		simS.X = append(simS.X, float64(k))
		simS.Y = append(simS.Y, results[i].Report.EnergyPerRequest)
	}
	base := analysisParams(validationScenario("precinct", nodes, 9))
	th, err := analysis.PReCinCtVsRegions(base, Fig9bRegions)
	if err != nil {
		return Figure{}, err
	}
	thS := Series{Label: "PReCinCt theory"}
	for _, p := range th {
		thS.X = append(thS.X, p.X)
		thS.Y = append(thS.Y, p.Y)
	}
	fig.Series = []Series{thS, simS}
	return fig, nil
}

// ExtSpeedSweep measures latency and failure rate across the maximum
// node speeds the paper simulates (2–20 m/s, Section 6.1), an extension
// series the paper describes but does not plot.
func ExtSpeedSweep(cfg ExperimentConfig) (latFig, failFig Figure, err error) {
	speeds := []float64{2, 8, 12, 16, 20}
	var scenarios []Scenario
	for _, v := range speeds {
		s := DefaultScenario()
		s.Name = fmt.Sprintf("speed/%.0f", v)
		s.MaxSpeed = v
		cfg.apply(&s)
		scenarios = append(scenarios, s)
	}
	results, err := Sweep(scenarios, cfg.Workers)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	latFig = Figure{ID: "ext-speed-latency", Title: "Latency per request vs max speed",
		XLabel: "m/s", YLabel: "latency (s)"}
	failFig = Figure{ID: "ext-speed-failures", Title: "Failure rate vs max speed",
		XLabel: "m/s", YLabel: "failure rate"}
	lat := Series{Label: "PReCinCt"}
	fail := Series{Label: "PReCinCt"}
	for i, v := range speeds {
		r := results[i].Report
		lat.X = append(lat.X, v)
		lat.Y = append(lat.Y, r.MeanLatency)
		fail.X = append(fail.X, v)
		rate := 0.0
		if r.Requests > 0 {
			rate = float64(r.Failures) / float64(r.Requests)
		}
		fail.Y = append(fail.Y, rate)
	}
	latFig.Series = []Series{lat}
	failFig.Series = []Series{fail}
	return latFig, failFig, nil
}

// ExtZipfSweep measures the byte hit ratio across request skews — the
// knob that controls how much a cooperative cache can possibly help.
func ExtZipfSweep(cfg ExperimentConfig) (Figure, error) {
	thetas := []float64{0, 0.4, 0.8, 1.2}
	policies := []string{"gd-ld", "gd-size"}
	labels := []string{"GD-LD", "GD-Size"}
	var scenarios []Scenario
	for _, policy := range policies {
		for _, theta := range thetas {
			s := DefaultScenario()
			s.Name = fmt.Sprintf("zipf/%s/%.1f", policy, theta)
			s.Policy = policy
			s.ZipfTheta = theta
			cfg.apply(&s)
			scenarios = append(scenarios, s)
		}
	}
	results, err := Sweep(scenarios, cfg.Workers)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{ID: "ext-zipf", Title: "Byte hit ratio vs request skew",
		XLabel: "theta", YLabel: "byte hit ratio"}
	idx := 0
	for pi := range policies {
		s := Series{Label: labels[pi]}
		for _, theta := range thetas {
			s.X = append(s.X, theta)
			s.Y = append(s.Y, results[idx].Report.ByteHitRatio)
			idx++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ExtRetrievalSchemes reproduces the comparison the paper inherits from
// its companion workshop paper [11]: energy per request for PReCinCt,
// flooding and expanding ring across node counts on the mobile topology.
func ExtRetrievalSchemes(cfg ExperimentConfig) (Figure, error) {
	counts := []int{40, 80, 120, 160}
	if cfg.Nodes > 0 {
		counts = nil
		for _, n := range []int{40, 80, 120, 160} {
			if n <= cfg.Nodes {
				counts = append(counts, n)
			}
		}
		if len(counts) == 0 {
			counts = []int{cfg.Nodes}
		}
	}
	schemes := []string{"precinct", "flooding", "expanding-ring"}
	labels := []string{"PReCinCt", "Flooding", "Expanding ring"}
	var scenarios []Scenario
	for _, scheme := range schemes {
		for _, n := range counts {
			s := DefaultScenario()
			s.Name = fmt.Sprintf("ext/%s/n%d", scheme, n)
			s.Retrieval = scheme
			s.Nodes = n
			s.UpdateInterval = 0
			s.Consistency = "none"
			c := cfg
			c.Nodes = 0
			c.apply(&s)
			scenarios = append(scenarios, s)
		}
	}
	results, err := Sweep(scenarios, cfg.Workers)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{ID: "ext", Title: "Energy per request vs nodes by retrieval scheme (mobile)",
		XLabel: "nodes", YLabel: "energy/request (mJ)"}
	idx := 0
	for si := range schemes {
		s := Series{Label: labels[si]}
		for _, n := range counts {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, results[idx].Report.EnergyPerRequest)
			idx++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
