package precinct

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	s := DefaultScenario()
	s.Name = "round-trip"
	s.Nodes = 42
	s.Consistency = "push-adaptive-pull"
	s.Faults = []Fault{{At: 10, Node: 3, Kind: "crash"}}
	var buf bytes.Buffer
	if err := SaveScenario(s, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.Nodes != 42 || got.Consistency != s.Consistency {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if len(got.Faults) != 1 || got.Faults[0].Node != 3 {
		t.Errorf("faults lost: %+v", got.Faults)
	}
}

func TestLoadScenarioPartialDocumentKeepsDefaults(t *testing.T) {
	doc := `{"Nodes": 20, "Policy": "gd-size"}`
	s, err := LoadScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 20 || s.Policy != "gd-size" {
		t.Errorf("overrides not applied: %+v", s)
	}
	def := DefaultScenario()
	if s.AreaSide != def.AreaSide || s.RequestInterval != def.RequestInterval {
		t.Errorf("defaults not preserved: %+v", s)
	}
}

func TestLoadScenarioRejectsUnknownFields(t *testing.T) {
	doc := `{"Nodes": 20, "Nodez": 30}`
	if _, err := LoadScenario(strings.NewReader(doc)); err == nil {
		t.Error("typo field accepted")
	}
}

func TestLoadScenarioRejectsGarbage(t *testing.T) {
	if _, err := LoadScenario(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestScenarioFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	s := DefaultScenario()
	s.Name = "file-trip"
	if err := SaveScenarioFile(s, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenarioFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "file-trip" {
		t.Errorf("Name = %q", got.Name)
	}
	if _, err := LoadScenarioFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadedScenarioRuns(t *testing.T) {
	doc := `{"Nodes": 25, "Items": 60, "Duration": 150, "Warmup": 30}`
	s, err := LoadScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Completed == 0 {
		t.Error("loaded scenario served nothing")
	}
}
