package precinct

import (
	"strings"
	"testing"
)

// tinyConfig keeps figure tests fast: the goal here is plumbing
// correctness (labels, axes, series alignment), not statistical quality.
func tinyConfig() ExperimentConfig {
	return ExperimentConfig{
		Seed:     3,
		Duration: 120,
		Warmup:   30,
		Nodes:    25,
		Items:    60,
	}
}

func TestFig4And5Structure(t *testing.T) {
	fig4, fig5, err := Fig4And5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{fig4, fig5} {
		if len(fig.Series) != 2 {
			t.Fatalf("%s: %d series, want 2", fig.ID, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.X) != len(CachePercents) || len(s.Y) != len(s.X) {
				t.Fatalf("%s %s: x/y lengths %d/%d", fig.ID, s.Label, len(s.X), len(s.Y))
			}
			for i, x := range s.X {
				if x != CachePercents[i]*100 {
					t.Errorf("%s: x[%d] = %v", fig.ID, i, x)
				}
			}
		}
	}
	// Byte hit ratio must increase with cache size for both policies.
	for _, s := range fig5.Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("fig5 %s: byte hit ratio did not grow with cache size: %v", s.Label, s.Y)
		}
	}
	// The rendered table mentions both policies.
	text := fig4.String()
	if !strings.Contains(text, "GD-LD") || !strings.Contains(text, "GD-Size") {
		t.Errorf("figure text missing series labels:\n%s", text)
	}
}

func TestFig6To8Structure(t *testing.T) {
	fig6, fig7, fig8, err := Fig6To8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{fig6, fig7, fig8} {
		if len(fig.Series) != 3 {
			t.Fatalf("%s: %d series", fig.ID, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Y) != len(UpdateRatios) {
				t.Fatalf("%s %s: %d points", fig.ID, s.Label, len(s.Y))
			}
		}
	}
	// Plain-push must be the most expensive at the highest update rate
	// even at tiny scale.
	if fig6.Series[0].Y[0] <= fig6.Series[2].Y[0] {
		t.Errorf("plain-push (%v) should exceed adaptive (%v)", fig6.Series[0].Y[0], fig6.Series[2].Y[0])
	}
}

func TestFig9aStructure(t *testing.T) {
	cfg := ExperimentConfig{Seed: 3, Duration: 150, Nodes: 40}
	fig, err := Fig9a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("%d series, want 4 (theory+sim per scheme)", len(fig.Series))
	}
	// Flooding must dominate PReCinCt in both theory and simulation at
	// the largest plotted node count.
	last := len(fig.Series[0].Y) - 1
	theoryPC, simPC := fig.Series[0].Y[last], fig.Series[1].Y[last]
	theoryFL, simFL := fig.Series[2].Y[last], fig.Series[3].Y[last]
	if theoryFL <= theoryPC {
		t.Error("theory: flooding should exceed precinct")
	}
	if simFL <= simPC {
		t.Error("simulation: flooding should exceed precinct")
	}
}

func TestFig9bStructure(t *testing.T) {
	cfg := ExperimentConfig{Seed: 3, Duration: 150}
	fig, err := Fig9b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("%d series, want 2", len(fig.Series))
	}
	theory := fig.Series[0]
	for i := 1; i < len(theory.Y); i++ {
		if theory.Y[i] >= theory.Y[i-1] {
			t.Errorf("theory curve not decreasing at %v regions", theory.X[i])
		}
	}
	// Simulation: more regions should not cost substantially more
	// energy (allow noise at tiny scale).
	sim := fig.Series[1]
	if sim.Y[len(sim.Y)-1] > sim.Y[0]*1.5 {
		t.Errorf("sim energy grew with regions: %v", sim.Y)
	}
}

func TestExtRetrievalSchemesStructure(t *testing.T) {
	cfg := tinyConfig()
	fig, err := ExtRetrievalSchemes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("%d series, want 3", len(fig.Series))
	}
	last := len(fig.Series[0].Y) - 1
	if fig.Series[1].Y[last] <= fig.Series[0].Y[last] {
		t.Errorf("flooding energy (%v) should exceed precinct (%v)",
			fig.Series[1].Y[last], fig.Series[0].Y[last])
	}
}

func TestFigureStringRendering(t *testing.T) {
	fig := Figure{
		ID: "test", Title: "A test figure", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	out := fig.String()
	for _, want := range []string{"test", "A test figure", "a", "b", "10", "40"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, out)
		}
	}
	empty := Figure{ID: "e", Title: "empty"}
	if empty.String() == "" {
		t.Error("empty figure renders nothing")
	}
}

func TestFigureCSV(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "t", XLabel: "x, label",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: `b"q`, X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[0] != `"x, label",a,"b""q"` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10,30" || lines[2] != "2,20,40" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
	if got := (Figure{XLabel: "x"}).CSV(); got != "x\n" {
		t.Errorf("empty figure CSV = %q", got)
	}
}

func TestExtSpeedSweepStructure(t *testing.T) {
	lat, fail, err := ExtSpeedSweep(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Series) != 1 || len(fail.Series) != 1 {
		t.Fatal("speed sweep series count wrong")
	}
	if len(lat.Series[0].X) != 5 {
		t.Fatalf("speed points: %v", lat.Series[0].X)
	}
	for _, rate := range fail.Series[0].Y {
		if rate < 0 || rate > 1 {
			t.Errorf("failure rate %v out of [0,1]", rate)
		}
	}
}

func TestExtZipfSweepStructure(t *testing.T) {
	fig, err := ExtZipfSweep(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatal("zipf sweep series count wrong")
	}
	// Higher skew should give a higher byte hit ratio for GD-LD.
	s := fig.Series[0]
	if s.Y[len(s.Y)-1] <= s.Y[0] {
		t.Errorf("byte hit ratio did not grow with skew: %v", s.Y)
	}
}

func TestFigureChart(t *testing.T) {
	fig := Figure{
		ID: "c", Title: "chart test", XLabel: "n",
		Series: []Series{
			{Label: "up", X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}},
			{Label: "down", X: []float64{0, 1, 2}, Y: []float64{10, 5, 0}},
		},
	}
	out := fig.Chart(40, 10)
	for _, want := range []string{"a=up", "b=down", "chart test", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The crossing midpoint overlaps: a '*' appears.
	if !strings.Contains(out, "*") {
		t.Errorf("overlapping points not marked:\n%s", out)
	}
	if !strings.Contains((Figure{ID: "e"}).Chart(40, 10), "no data") {
		t.Error("empty figure chart should say so")
	}
	// Degenerate sizes are clamped, flat series don't divide by zero.
	flat := Figure{Series: []Series{{Label: "f", X: []float64{1, 1}, Y: []float64{2, 2}}}}
	if flat.Chart(1, 1) == "" {
		t.Error("flat chart empty")
	}
}
